"""Content-addressed persistence for scenario results.

Every :class:`~repro.runtime.spec.ScenarioSpec` hashes to a stable
:func:`~repro.runtime.spec.spec_key`; a :class:`ResultStore` maps those keys
to :class:`~repro.runtime.records.RunRecord`\\ s.  Because scenarios are
deterministic in their spec, the store turns the scenario runtime into an
incremental computation engine: sweeps resume where they stopped, repeated
experiments cost nothing, and tables aggregate straight from disk.

>>> from repro.store import FileStore
>>> from repro.runtime import SweepSpec, run_sweep
>>> store = FileStore(".repro-store")
>>> result = run_sweep(SweepSpec(sizes=(4, 6, 8)), store=store)   # runs 3 cells
>>> again = run_sweep(SweepSpec(sizes=(4, 6, 8)), store=store)    # runs 0 cells
>>> again.cache_hits, again.executed
(3, 0)
>>> store.query(problem="rendezvous", n_range=(4, 6)).table()

Backends: :class:`MemoryStore` (process-local dict) and :class:`FileStore`
(JSONL shards + index under ``.repro-store/``, atomic appends, kill-safe).
:class:`CachingRunner` wraps single-scenario ``run()`` the same way; it is
loaded lazily because it pulls in the full algorithm stack.
"""

from __future__ import annotations

from .base import KeyLike, ResultStore
from .filestore import DEFAULT_STORE_DIR, FileStore
from .memory import MemoryStore
from .merge import merge_stores

__all__ = [
    "ResultStore",
    "KeyLike",
    "MemoryStore",
    "FileStore",
    "DEFAULT_STORE_DIR",
    "open_store",
    "merge_stores",
    # lazily loaded:
    "CachingRunner",
]


def open_store(root=None, *, create: bool = True) -> FileStore:
    """Open (or create) the file store at ``root`` (default ``.repro-store``)."""
    return FileStore(root if root is not None else DEFAULT_STORE_DIR, create=create)


def __getattr__(name: str):
    if name == "CachingRunner":
        from .caching import CachingRunner

        return CachingRunner
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
