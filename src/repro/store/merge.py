"""Merging shipped result stores: dedup by spec key, loud on divergence.

The file store is the exchange format of the distributed sweep fabric: every
worker writes records into its own shard store, the shard directories are
shipped (copied, rsynced, tarred — they are plain files) to one machine, and
:func:`merge_stores` folds them into a destination store.  Because records
are content-addressed, merging is a set union:

* a key absent from the destination is **merged** (one ``put``);
* a key already present with an *identical* payload is a **duplicate**
  (skipped — the normal case for a cell two workers both salvaged);
* a key present with a *different* payload is a **conflict** — two writers
  disagreed about a deterministic computation.  By default the merge
  completes its scan and then raises
  :class:`~repro.exceptions.StoreConflictError` naming every conflicting
  key; ``on_conflict="ours"`` keeps the destination's payload and
  ``on_conflict="theirs"`` takes the incoming one instead.

After the record pass the destination's index is rebuilt from its shards,
so a merge always leaves index and shard contents in agreement.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, Set, Union

from ..exceptions import StoreConflictError, StoreError
from .base import ResultStore
from .filestore import FileStore

__all__ = ["merge_stores", "ON_CONFLICT_CHOICES"]

#: Accepted ``on_conflict`` policies.
ON_CONFLICT_CHOICES = ("error", "ours", "theirs")

SourceLike = Union[str, Path, ResultStore]


def _open_source(source: SourceLike, salvage: bool) -> tuple:
    """Resolve a source argument to ``(store, close_when_done)``."""
    if isinstance(source, ResultStore):
        return source, False
    return FileStore(source, create=False, salvage=salvage), True


def merge_stores(
    sources: Iterable[SourceLike],
    into: ResultStore,
    *,
    on_conflict: str = "error",
    salvage: bool = False,
) -> Dict[str, Any]:
    """Fold every record of ``sources`` into the ``into`` store.

    ``sources`` are store directories (opened read-only as
    :class:`~repro.store.filestore.FileStore`) or live
    :class:`~repro.store.base.ResultStore` objects; ``salvage=True`` opens
    directory sources tolerantly, which is how partially written shards of
    a killed worker are shipped (a truncated final line is always tolerated,
    with or without ``salvage``).  Returns counters::

        {"sources": ..., "scanned": ..., "merged": ..., "duplicates": ...,
         "conflicts": [key, ...]}
    """
    if on_conflict not in ON_CONFLICT_CHOICES:
        raise StoreError(
            f"unknown on_conflict policy {on_conflict!r}; "
            f"choose one of {ON_CONFLICT_CHOICES}"
        )
    counters: Dict[str, Any] = {
        "sources": 0,
        "scanned": 0,
        "merged": 0,
        "duplicates": 0,
        "conflicts": [],
    }
    conflicts: Set[str] = set()
    for source in sources:
        store, close_when_done = _open_source(source, salvage)
        try:
            counters["sources"] += 1
            for record in store.records():
                counters["scanned"] += 1
                key = record.spec.key()
                existing = into.get(key)
                if existing is None:
                    into.put(record)
                    counters["merged"] += 1
                elif existing == record:
                    counters["duplicates"] += 1
                else:
                    conflicts.add(key)
                    if on_conflict == "theirs":
                        into.put_replace(record)
        finally:
            if close_when_done:
                store.close()
    counters["conflicts"] = sorted(conflicts)
    into.flush()
    if isinstance(into, FileStore):
        into.rebuild_index()
    if conflicts and on_conflict == "error":
        preview = ", ".join(key[:12] for key in sorted(conflicts)[:5])
        raise StoreConflictError(
            f"{len(conflicts)} key(s) hold divergent payloads across the merged "
            f"stores ({preview}{', …' if len(conflicts) > 5 else ''}); a "
            "deterministic cell must never produce two different records — "
            "re-run the sweep, or pick --on-conflict ours/theirs to override",
            conflicts=sorted(conflicts),
        )
    return counters
