"""The result-store interface and its query layer.

A :class:`ResultStore` maps the content hash of a
:class:`~repro.runtime.spec.ScenarioSpec` (its :func:`~repro.runtime.spec.spec_key`)
to the :class:`~repro.runtime.records.RunRecord` produced by running it.
Scenarios are deterministic in their spec, so the store is a pure cache:
``put`` is idempotent, a second ``put`` of the same key is a no-op, and a
``get`` hit is indistinguishable from re-running the cell.

Two backends implement the interface:

* :class:`~repro.store.memory.MemoryStore` — a process-local dict; and
* :class:`~repro.store.filestore.FileStore` — JSONL shards plus an index
  under a ``.repro-store/`` directory, with atomic per-record appends.

The query layer (:meth:`ResultStore.query`) filters stored records by spec
and record attributes and returns a
:class:`~repro.runtime.records.SweepResult`, so tables and aggregation work
straight off the store.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..runtime.records import RunRecord, SweepResult
from ..runtime.spec import ScenarioSpec

__all__ = ["ResultStore", "KeyLike"]

#: A store key: the hex digest itself, or a spec to hash.
KeyLike = Union[str, ScenarioSpec]


def _key_of(key: KeyLike) -> str:
    return key if isinstance(key, str) else key.key()


#: Deterministic ordering of query results, independent of backend layout.
def _canonical_order(record: RunRecord) -> Tuple[Any, ...]:
    return (
        record.spec.problem,
        record.spec.family,
        record.graph_size,
        record.spec.seed,
        record.spec.scheduler,
        record.spec.key(),
    )


class ResultStore:
    """Abstract content-addressed store of run records."""

    backend = "abstract"

    # ------------------------------------------------------------------
    # core mapping (implemented by the backends)
    # ------------------------------------------------------------------
    def get(self, key: KeyLike) -> Optional[RunRecord]:
        """The stored record for ``key`` (a digest or a spec), or ``None``."""
        raise NotImplementedError

    def put(self, record: RunRecord) -> str:
        """Store ``record`` under its spec's key; idempotent.  Returns the key."""
        raise NotImplementedError

    def put_replace(self, record: RunRecord) -> str:
        """Store ``record`` under its key, replacing any existing payload.

        Only needed by conflict-resolving code paths (``store merge
        --on-conflict theirs``); everyday writers should use the idempotent
        :meth:`put` — for a deterministic computation the two never differ.
        """
        raise NotImplementedError

    def keys(self) -> Tuple[str, ...]:
        """All stored keys, in a backend-defined but stable order."""
        raise NotImplementedError

    def records(self) -> Iterator[RunRecord]:
        """Iterate every stored record (order matches :meth:`keys`)."""
        for key in self.keys():
            record = self.get(key)
            if record is not None:
                yield record

    def get_many(self, keys: Iterable[KeyLike]) -> List[Optional[RunRecord]]:
        """The stored records for ``keys``, in argument order (``None`` for
        misses).  The bulk read behind experiment aggregation: a table's
        cells come back in the experiment's own cell order, not the
        backend's."""
        return [self.get(key) for key in keys]

    def __contains__(self, key: object) -> bool:
        return isinstance(key, (str, ScenarioSpec)) and self.get(key) is not None

    def __len__(self) -> int:
        return len(self.keys())

    def generation(self) -> str:
        """Content stamp of the stored key set: equal stamps, equal contents.

        A deterministic hash over the sorted keys — stable across processes,
        restarts and on-disk compaction, different the moment any record is
        added or evicted.  The serving tier combines it with an experiment's
        own content hash into an ETag, so "has anything this table depends
        on changed?" costs one in-memory hash and zero record reads.
        """
        digest = hashlib.sha256("\n".join(sorted(self.keys())).encode("ascii"))
        return digest.hexdigest()[:16]

    def refresh(self) -> bool:
        """Pick up records concurrently written by other handles/processes.

        Returns ``True`` when new state became visible.  A no-op for
        backends without shared external state (the in-memory store sees
        its own writes immediately).
        """
        return False

    # ------------------------------------------------------------------
    # lifecycle (no-ops for backends without buffered state)
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Push any buffered writes to durable storage."""

    def close(self) -> None:
        """Release resources; the store must not be used afterwards."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # query layer
    # ------------------------------------------------------------------
    def query(
        self,
        predicate: Optional[Callable[[RunRecord], bool]] = None,
        *,
        n_range: Optional[Tuple[int, int]] = None,
        cost_range: Optional[Tuple[int, int]] = None,
        ok: Optional[bool] = None,
        keys: Optional[Iterable[KeyLike]] = None,
        limit: Optional[int] = None,
        offset: int = 0,
        **matches: Any,
    ) -> SweepResult:
        """Stored records matching the given filters, as a ``SweepResult``.

        ``matches`` are equality filters resolved against the record first
        and its spec second (the same rule as ``SweepResult.filter``), so
        both ``problem="esst"`` and ``max_traversals=10**6`` work — except
        ``problem``, which matches by *prefix*: ``problem="tick"`` selects
        every tick-asynchronous kind (``tick_leader``, ``tick_gossip``,
        ``tick_gathering``) next to the exact names, which still only match
        themselves; ``n_range`` and ``cost_range`` are inclusive ``(lo,
        hi)`` bounds on the actual graph size and the cost; ``keys``
        restricts to a known key set (what experiment aggregation passes).  Results come back in a canonical
        order (problem, family, size, seed, scheduler, key) regardless of
        the backend's on-disk layout, ready for ``.table()`` and
        :mod:`repro.analysis.aggregate`-style aggregation::

            store.query(problem="rendezvous", family="ring", n_range=(4, 12))

        ``limit`` / ``offset`` paginate: they slice the *canonically ordered*
        match set, so successive pages of the same query never overlap, skip
        or reorder records — the contract the HTTP result service's
        ``GET /runs?limit=&offset=`` relies on.
        """
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        problem_prefix = matches.pop("problem", None)
        if keys is not None:
            # Keyed lookups, not a scan: keys are content-hash addresses, so
            # the cost is O(len(keys)) regardless of how big the store is.
            seen = set()
            candidates = []
            for record in self.get_many(keys):
                if record is None or record.spec.key() in seen:
                    continue
                seen.add(record.spec.key())
                candidates.append(record)
        else:
            candidates = self.records()
        selected = []
        for record in candidates:
            if problem_prefix is not None and not record.spec.problem.startswith(
                str(problem_prefix)
            ):
                continue
            if n_range is not None and not (n_range[0] <= record.graph_size <= n_range[1]):
                continue
            if cost_range is not None and not (cost_range[0] <= record.cost <= cost_range[1]):
                continue
            if ok is not None and record.ok != ok:
                continue
            if predicate is not None and not predicate(record):
                continue
            selected.append(record)
        result = SweepResult(records=selected).filter(**matches) if matches else SweepResult(records=selected)
        result.records.sort(key=_canonical_order)
        if offset or limit is not None:
            stop = None if limit is None else offset + limit
            result.records[:] = result.records[offset:stop]
        return result

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Backend-specific counters (at least ``backend`` and ``records``)."""
        return {"backend": self.backend, "records": len(self)}

    @staticmethod
    def key_of(key: KeyLike) -> str:
        """Resolve a digest-or-spec argument to the digest string."""
        return _key_of(key)
