"""The on-disk result-store backend: JSONL shards plus an index.

Layout of a store directory (default name ``.repro-store``)::

    .repro-store/
    ├── store.meta.json      # format + spec-key versions, written once
    ├── index.jsonl          # one {"key", "shard"} line per stored record
    └── shards/
        ├── 0a.jsonl         # records whose key starts with "0a"
        ├── 3f.jsonl         # one {"key", "record"} JSON object per line
        └── ...

Durability model
----------------
Every ``put`` appends **one line** to the record's shard, flushes it, and
then appends one line to the index.  A single-line append is atomic for any
realistic line size, so a sweep killed at an arbitrary moment loses at most
the record whose line was being written: on the next open a truncated final
shard line is detected and dropped (the cell simply re-runs), and an index
line is recomputed from the shards when missing.  Malformed data anywhere
*else* in a shard means real corruption and raises
:class:`~repro.exceptions.StoreCorruptionError` — :meth:`FileStore.gc`
salvages what it can and rewrites the store compactly.

The shards are the source of truth; the index is a recoverable accelerator
(it spares opening every shard to answer ``keys()`` / ``__contains__``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, IO, Optional, Tuple

from ..exceptions import StoreCorruptionError, StoreError
from ..runtime.records import RunRecord
from ..runtime.spec import SPEC_KEY_VERSION
from .base import KeyLike, ResultStore

__all__ = ["FileStore", "DEFAULT_STORE_DIR", "FORMAT_VERSION"]

#: Conventional store directory name (what ``repro sweep --store`` defaults to).
DEFAULT_STORE_DIR = ".repro-store"

#: On-disk layout version; bumped only when the file layout itself changes.
FORMAT_VERSION = 1

_META_NAME = "store.meta.json"
_INDEX_NAME = "index.jsonl"
_SHARD_DIR = "shards"


def _append_line(handle: IO[str], payload: Dict[str, Any], fsync: bool) -> None:
    handle.write(json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n")
    handle.flush()
    if fsync:
        os.fsync(handle.fileno())


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _split_lines(text: str) -> Tuple[list, bool]:
    """Split shard/index text into complete lines; flag an unterminated tail.

    A line is only trusted once its terminating newline hit the disk, so the
    partial tail of a killed write is excluded from the body and reported.
    """
    if not text:
        return [], False
    lines = text.split("\n")
    truncated = lines[-1] != ""
    return lines[:-1], truncated


class FileStore(ResultStore):
    """Result store persisted as JSONL shards under a directory.

    Parameters
    ----------
    root:
        The store directory.  Created (with its metadata file) when missing,
        unless ``create=False`` — then a missing or alien directory raises
        :class:`~repro.exceptions.StoreError`.
    fsync:
        Force every append to stable storage.  Off by default: the atomic
        single-line append already bounds a crash's damage to the in-flight
        cell, and fsync-per-cell slows large sweeps considerably.
    salvage:
        Tolerate corrupt shard lines (skip and count them) instead of
        raising :class:`~repro.exceptions.StoreCorruptionError`.  This is
        how :meth:`gc` gets at a damaged store to repair it; leave it off
        for normal use so corruption is loud.
    """

    backend = "file"

    def __init__(
        self, root, *, create: bool = True, fsync: bool = False, salvage: bool = False
    ) -> None:
        self.root = Path(root)
        self.fsync = fsync
        self.salvage = salvage
        self._index: Dict[str, str] = {}
        self._shard_cache: Dict[str, Dict[str, RunRecord]] = {}
        self._handles: Dict[str, IO[str]] = {}
        self._index_handle: Optional[IO[str]] = None
        self._truncated_dropped = 0
        self._open(create)

    # ------------------------------------------------------------------
    # opening / layout
    # ------------------------------------------------------------------
    @property
    def _meta_path(self) -> Path:
        return self.root / _META_NAME

    @property
    def _index_path(self) -> Path:
        return self.root / _INDEX_NAME

    def _shard_path(self, shard: str) -> Path:
        return self.root / _SHARD_DIR / f"{shard}.jsonl"

    @staticmethod
    def _shard_of(key: str) -> str:
        return key[:2]

    def _open(self, create: bool) -> None:
        if self._meta_path.exists():
            try:
                meta = json.loads(self._meta_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as error:
                raise StoreError(f"unreadable store metadata {self._meta_path}: {error}")
            if meta.get("format_version") != FORMAT_VERSION:
                raise StoreError(
                    f"store {self.root} uses layout version {meta.get('format_version')}, "
                    f"this code reads version {FORMAT_VERSION}"
                )
            if meta.get("spec_key_version") != SPEC_KEY_VERSION:
                raise StoreError(
                    f"store {self.root} was written with spec-key version "
                    f"{meta.get('spec_key_version')} (current: {SPEC_KEY_VERSION}); "
                    "run 'repro store gc' after re-running the sweeps, or start a fresh store"
                )
        elif self.root.exists() and any(self.root.iterdir()):
            raise StoreError(
                f"{self.root} exists but holds no store metadata — refusing to "
                "treat an arbitrary directory as a result store"
            )
        elif create:
            (self.root / _SHARD_DIR).mkdir(parents=True, exist_ok=True)
            _atomic_write(
                self._meta_path,
                json.dumps(
                    {
                        "format_version": FORMAT_VERSION,
                        "spec_key_version": SPEC_KEY_VERSION,
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
            )
        else:
            raise StoreError(f"no result store at {self.root}")
        (self.root / _SHARD_DIR).mkdir(parents=True, exist_ok=True)
        self._load_index()

    def _load_index(self) -> None:
        """Load ``index.jsonl``, falling back to a shard scan when absent.

        Index entries are advisory: a key pointing at a shard that does not
        actually hold the record (the put was killed between the two appends
        — impossible in the shard-first write order, but cheap to defend
        against) is dropped lazily by :meth:`get`.  Conversely, shard records
        missing from the index (killed between shard and index append) are
        recovered here by scanning any shard whose record count exceeds its
        index count.
        """
        counts: Dict[str, int] = {}
        if self._index_path.exists():
            body, truncated = _split_lines(self._index_path.read_text(encoding="utf-8"))
            if truncated:
                self._truncated_dropped += 1
            for lineno, line in enumerate(body, start=1):
                try:
                    entry = json.loads(line)
                    key, shard = entry["key"], entry["shard"]
                except (json.JSONDecodeError, KeyError, TypeError) as error:
                    raise StoreCorruptionError(
                        f"corrupt index line {lineno} in {self._index_path}: {error}"
                    )
                self._index[key] = shard
                counts[shard] = counts.get(shard, 0) + 1
        shard_dir = self.root / _SHARD_DIR
        for path in sorted(shard_dir.glob("*.jsonl")):
            shard = path.stem
            indexed = counts.get(shard, 0)
            # Cheap reconciliation: only scan shards the index undercounts.
            if indexed and indexed == sum(1 for _ in self._iter_shard_lines(shard)):
                continue
            for key in self._load_shard(shard):
                if key not in self._index:
                    self._index[key] = shard
                    _append_line(
                        self._index_append_handle(), {"key": key, "shard": shard}, self.fsync
                    )

    def _iter_shard_lines(self, shard: str):
        path = self._shard_path(shard)
        if not path.exists():
            return
        body, _truncated = _split_lines(path.read_text(encoding="utf-8"))
        yield from body

    # ------------------------------------------------------------------
    # shard parsing
    # ------------------------------------------------------------------
    def _parse_shard(
        self, shard: str, salvage: bool = False
    ) -> Tuple[Dict[str, RunRecord], int]:
        """Parse one shard file into ``key -> record``; last write wins.

        A truncated final line is dropped (and counted).  With ``salvage``
        any undecodable or key-mismatched line is skipped and counted;
        without it, such a line raises ``StoreCorruptionError``.
        """
        path = self._shard_path(shard)
        records: Dict[str, RunRecord] = {}
        dropped = 0
        if not path.exists():
            return records, dropped
        body, truncated = _split_lines(path.read_text(encoding="utf-8"))
        if truncated:
            self._truncated_dropped += 1
        for lineno, line in enumerate(body, start=1):
            try:
                entry = json.loads(line)
                key = entry["key"]
                record = RunRecord.from_dict(entry["record"])
                if record.spec.key() != key:
                    raise StoreCorruptionError(
                        f"record in {path} line {lineno} does not hash to its key "
                        f"{key[:12]}… (content-address mismatch)"
                    )
            except StoreCorruptionError:
                if not salvage:
                    raise
                dropped += 1
                continue
            except Exception as error:
                if not salvage:
                    raise StoreCorruptionError(
                        f"corrupt shard line {lineno} in {path}: {error}"
                    )
                dropped += 1
                continue
            records[key] = record
        return records, dropped

    def _load_shard(self, shard: str) -> Dict[str, RunRecord]:
        if shard not in self._shard_cache:
            records, _dropped = self._parse_shard(shard, salvage=self.salvage)
            self._shard_cache[shard] = records
        return self._shard_cache[shard]

    # ------------------------------------------------------------------
    # core mapping
    # ------------------------------------------------------------------
    def get(self, key: KeyLike) -> Optional[RunRecord]:
        digest = self.key_of(key)
        shard = self._index.get(digest)
        if shard is None:
            return None
        record = self._load_shard(shard).get(digest)
        if record is None:
            # Index ahead of the shard (in-flight cell of a killed sweep).
            del self._index[digest]
            return None
        return record

    def put(self, record: RunRecord) -> str:
        key = record.spec.key()
        if key in self._index and self.get(key) is not None:
            return key
        shard = self._shard_of(key)
        _append_line(
            self._shard_append_handle(shard),
            {"key": key, "record": record.to_dict()},
            self.fsync,
        )
        _append_line(self._index_append_handle(), {"key": key, "shard": shard}, self.fsync)
        self._index[key] = shard
        if shard in self._shard_cache:
            # Keep the cache coherent; re-parse is wasteful for an append.
            self._shard_cache[shard][key] = record
        return key

    def keys(self) -> Tuple[str, ...]:
        return tuple(self._index)

    # ------------------------------------------------------------------
    # handles / lifecycle
    # ------------------------------------------------------------------
    def _shard_append_handle(self, shard: str) -> IO[str]:
        handle = self._handles.get(shard)
        if handle is None:
            path = self._shard_path(shard)
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = path.open("a", encoding="utf-8")
            self._handles[shard] = handle
        return handle

    def _index_append_handle(self) -> IO[str]:
        if self._index_handle is None:
            self._index_handle = self._index_path.open("a", encoding="utf-8")
        return self._index_handle

    def flush(self) -> None:
        for handle in self._handles.values():
            handle.flush()
        if self._index_handle is not None:
            self._index_handle.flush()

    def close(self) -> None:
        self.flush()
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
        if self._index_handle is not None:
            self._index_handle.close()
            self._index_handle = None

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def verify(self) -> Dict[str, int]:
        """Parse every shard strictly; raise on corruption, report counts."""
        records = 0
        for path in sorted((self.root / _SHARD_DIR).glob("*.jsonl")):
            parsed, _dropped = self._parse_shard(path.stem)
            records += len(parsed)
        return {"records": records, "truncated_dropped": self._truncated_dropped}

    def gc(self) -> Dict[str, int]:
        """Compact the store: drop corrupt/duplicate lines, rewrite the index.

        Every shard is re-parsed in salvage mode (undecodable and
        content-address-mismatched lines are discarded, duplicate keys keep
        the last write), shards are rewritten atomically, empty shards
        removed, and ``index.jsonl`` regenerated.  Returns counters::

            {"kept": ..., "dropped_corrupt": ..., "dropped_duplicate": ...,
             "reclaimed_bytes": ...}
        """
        self.close()
        kept = 0
        dropped_corrupt = 0
        dropped_duplicate = 0
        before = sum(
            path.stat().st_size for path in (self.root / _SHARD_DIR).glob("*.jsonl")
        )
        index_lines = []
        new_index: Dict[str, str] = {}
        new_cache: Dict[str, Dict[str, RunRecord]] = {}
        for path in sorted((self.root / _SHARD_DIR).glob("*.jsonl")):
            shard = path.stem
            body, _ = _split_lines(path.read_text(encoding="utf-8"))
            records, dropped = self._parse_shard(shard, salvage=True)
            dropped_corrupt += dropped
            dropped_duplicate += max(0, len(body) - dropped - len(records))
            if not records:
                path.unlink()
                continue
            lines = [
                json.dumps(
                    {"key": key, "record": record.to_dict()},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                for key, record in records.items()
            ]
            _atomic_write(path, "\n".join(lines) + "\n")
            for key in records:
                index_lines.append(
                    json.dumps({"key": key, "shard": shard}, sort_keys=True, separators=(",", ":"))
                )
                new_index[key] = shard
            new_cache[shard] = records
            kept += len(records)
        _atomic_write(self._index_path, "\n".join(index_lines) + "\n" if index_lines else "")
        after = sum(
            path.stat().st_size for path in (self.root / _SHARD_DIR).glob("*.jsonl")
        )
        self._index = new_index
        self._shard_cache = new_cache
        self._truncated_dropped = 0
        return {
            "kept": kept,
            "dropped_corrupt": dropped_corrupt,
            "dropped_duplicate": dropped_duplicate,
            "reclaimed_bytes": max(0, before - after),
        }

    def stats(self) -> Dict[str, Any]:
        shard_paths = list((self.root / _SHARD_DIR).glob("*.jsonl"))
        return {
            "backend": self.backend,
            "root": str(self.root),
            "records": len(self._index),
            "shards": len(shard_paths),
            "bytes": sum(path.stat().st_size for path in shard_paths),
            "truncated_dropped": self._truncated_dropped,
        }
