"""The on-disk result-store backend: JSONL shards plus an index.

Layout of a store directory (default name ``.repro-store``)::

    .repro-store/
    ├── store.meta.json      # format + spec-key versions, written once
    ├── index.jsonl          # one {"key", "shard"} line per stored record
    ├── lastread.json        # advisory {key: last-access epoch} for LRU gc
    ├── .lock                # advisory flock target for multi-writer stores
    └── shards/
        ├── 0a.jsonl         # records whose key starts with "0a"
        ├── 3f--w1.jsonl     # the same, written under writer namespace "w1"
        └── ...

Durability model
----------------
Every ``put`` appends **one line** to the record's shard, flushes it, and
then appends one line to the index.  A single-line append is atomic for any
realistic line size, so a sweep killed at an arbitrary moment loses at most
the record whose line was being written: on the next open a truncated final
shard line is detected and dropped, and a record whose index line never
landed is simply not visible (the cell re-runs either way); a wholly
missing or lost index file is rebuilt by scanning the unindexed shards.
Malformed data anywhere
*else* in a shard means real corruption and raises
:class:`~repro.exceptions.StoreCorruptionError` — :meth:`FileStore.gc`
salvages what it can and rewrites the store compactly.

The shards are the source of truth; the index is a recoverable accelerator
(it spares opening every shard to answer ``keys()`` / ``__contains__``).

Multi-writer model
------------------
Several processes may hold the same store open as long as each passes a
distinct ``writer`` name: a writer appends only to its **own** shard
namespace (``<prefix>--<writer>.jsonl``), so two writers never interleave
bytes within one file, while the shared ``index.jsonl`` is appended one
atomic line at a time under an advisory ``flock``.  Writers do not see each
other's un-reopened records (each process caches its own index) — that is
fine for the intended use, a fleet of queue workers computing *disjoint*
content-addressed cells.  :meth:`gc` later collapses writer namespaces back
into canonical shards, and :meth:`rebuild_index` reconciles the index with
whatever the shards actually hold.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import time
from pathlib import Path
from typing import Any, Dict, IO, Iterator, Optional, Tuple

try:  # pragma: no cover - fcntl is present on every POSIX platform we run on
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from ..exceptions import StoreCorruptionError, StoreError
from ..obs.metrics import get_registry
from ..runtime.records import RunRecord
from ..runtime.spec import SPEC_KEY_VERSION
from .base import KeyLike, ResultStore

__all__ = ["FileStore", "DEFAULT_STORE_DIR", "FORMAT_VERSION"]

#: Conventional store directory name (what ``repro sweep --store`` defaults to).
DEFAULT_STORE_DIR = ".repro-store"

#: On-disk layout version; bumped only when the file layout itself changes.
FORMAT_VERSION = 1

_META_NAME = "store.meta.json"
_INDEX_NAME = "index.jsonl"
_LASTREAD_NAME = "lastread.json"
_LOCK_NAME = ".lock"
_SHARD_DIR = "shards"

#: Writer namespaces become file-name components; keep them boring.
_WRITER_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*\Z")


def _append_line(handle: IO[str], payload: Dict[str, Any], fsync: bool) -> int:
    line = json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    handle.write(line)
    handle.flush()
    if fsync:
        os.fsync(handle.fileno())
    return len(line.encode("utf-8"))


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _split_lines(text: str) -> Tuple[list, bool]:
    """Split shard/index text into complete lines; flag an unterminated tail.

    A line is only trusted once its terminating newline hit the disk, so the
    partial tail of a killed write is excluded from the body and reported.
    """
    if not text:
        return [], False
    lines = text.split("\n")
    truncated = lines[-1] != ""
    return lines[:-1], truncated


class FileStore(ResultStore):
    """Result store persisted as JSONL shards under a directory.

    Parameters
    ----------
    root:
        The store directory.  Created (with its metadata file) when missing,
        unless ``create=False`` — then a missing or alien directory raises
        :class:`~repro.exceptions.StoreError`.
    fsync:
        Force every append to stable storage.  Off by default: the atomic
        single-line append already bounds a crash's damage to the in-flight
        cell, and fsync-per-cell slows large sweeps considerably.
    salvage:
        Tolerate corrupt shard lines (skip and count them) instead of
        raising :class:`~repro.exceptions.StoreCorruptionError`.  This is
        how :meth:`gc` gets at a damaged store to repair it; leave it off
        for normal use so corruption is loud.
    writer:
        Writer namespace for multi-writer stores.  When set, appends go to
        this writer's own shard files (``<prefix>--<writer>.jsonl``) so that
        concurrent writer processes never share an append target; index
        appends are serialised with an advisory lock.  Reads are unaffected
        — any writer (or a plain reader) sees every namespace.
    """

    backend = "file"

    def __init__(
        self,
        root,
        *,
        create: bool = True,
        fsync: bool = False,
        salvage: bool = False,
        writer: Optional[str] = None,
    ) -> None:
        if writer is not None and ("--" in writer or not _WRITER_RE.match(writer)):
            raise StoreError(
                f"invalid writer name {writer!r}: use letters, digits, '.', '_' "
                "or '-' (and no '--', which separates the shard prefix)"
            )
        self.root = Path(root)
        self.fsync = fsync
        self.salvage = salvage
        self.writer = writer
        self._index: Dict[str, str] = {}
        self._shard_cache: Dict[str, Dict[str, RunRecord]] = {}
        self._handles: Dict[str, IO[str]] = {}
        self._index_handle: Optional[IO[str]] = None
        self._truncated_dropped = 0
        self._last_read: Dict[str, float] = {}
        self._lastread_dirty = False
        self._index_seen: Optional[Tuple[int, int]] = None
        self._open(create)

    # ------------------------------------------------------------------
    # opening / layout
    # ------------------------------------------------------------------
    @property
    def _meta_path(self) -> Path:
        return self.root / _META_NAME

    @property
    def _index_path(self) -> Path:
        return self.root / _INDEX_NAME

    @property
    def _lastread_path(self) -> Path:
        return self.root / _LASTREAD_NAME

    def _shard_path(self, shard: str) -> Path:
        return self.root / _SHARD_DIR / f"{shard}.jsonl"

    def _shard_for(self, key: str) -> str:
        """The shard this store appends ``key`` to (writer-namespaced)."""
        prefix = key[:2]
        return prefix if self.writer is None else f"{prefix}--{self.writer}"

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Hold the store's advisory lock (a no-op where flock is missing).

        Guards the shared append/rewrite targets — ``index.jsonl`` and
        ``lastread.json`` — against concurrent writer processes.  Shard
        appends never need it: each writer owns its namespace's files.
        """
        if fcntl is None:  # pragma: no cover
            yield
            return
        with (self.root / _LOCK_NAME).open("a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _open(self, create: bool) -> None:
        if self._meta_path.exists():
            try:
                meta = json.loads(self._meta_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as error:
                raise StoreError(f"unreadable store metadata {self._meta_path}: {error}")
            if meta.get("format_version") != FORMAT_VERSION:
                raise StoreError(
                    f"store {self.root} uses layout version {meta.get('format_version')}, "
                    f"this code reads version {FORMAT_VERSION}"
                )
            if meta.get("spec_key_version") != SPEC_KEY_VERSION:
                raise StoreError(
                    f"store {self.root} was written with spec-key version "
                    f"{meta.get('spec_key_version')} (current: {SPEC_KEY_VERSION}); "
                    "run 'repro store gc' after re-running the sweeps, or start a fresh store"
                )
        elif self.root.exists() and any(self.root.iterdir()):
            raise StoreError(
                f"{self.root} exists but holds no store metadata — refusing to "
                "treat an arbitrary directory as a result store"
            )
        elif create:
            (self.root / _SHARD_DIR).mkdir(parents=True, exist_ok=True)
            _atomic_write(
                self._meta_path,
                json.dumps(
                    {
                        "format_version": FORMAT_VERSION,
                        "spec_key_version": SPEC_KEY_VERSION,
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
            )
        else:
            raise StoreError(f"no result store at {self.root}")
        (self.root / _SHARD_DIR).mkdir(parents=True, exist_ok=True)
        self._load_index()
        self._load_last_read()

    def _load_last_read(self) -> None:
        """Load the advisory last-access map (tolerating absence/corruption).

        The map only steers LRU eviction, so a damaged file degrades to
        "never accessed" rather than an error.
        """
        try:
            data = json.loads(self._lastread_path.read_text(encoding="utf-8"))
            self._last_read = {
                str(key): float(stamp)
                for key, stamp in data.items()
                if isinstance(stamp, (int, float))
            }
        except (OSError, json.JSONDecodeError, AttributeError):
            self._last_read = {}

    def _index_fingerprint(self) -> Optional[Tuple[int, int]]:
        """Cheap change detector for ``index.jsonl``: ``(size, mtime_ns)``."""
        try:
            stat = os.stat(self._index_path)
        except OSError:
            return None
        return (stat.st_size, stat.st_mtime_ns)

    def _load_index(self) -> None:
        """Load ``index.jsonl``, falling back to a shard scan when needed.

        Index entries are advisory: a key pointing at a shard that does not
        actually hold the record (the put was killed between the two appends
        — impossible in the shard-first write order, but cheap to defend
        against) is dropped lazily by :meth:`get`.  In the other direction
        only shards the index does not mention *at all* (a deleted or lost
        index file) are scanned and re-indexed here; a shard the index
        merely undercounts — the one in-flight record of a put killed
        between its shard and index appends — is left to re-run, exactly
        like a truncated tail line.  Opening a store therefore reads **no**
        shard bytes in the steady state, however large the store; the full
        reconciliation lives in :meth:`rebuild_index` and :meth:`gc`.
        """
        counts: Dict[str, int] = {}
        if self._index_path.exists():
            body, truncated = _split_lines(self._index_path.read_text(encoding="utf-8"))
            if truncated:
                self._truncated_dropped += 1
            for lineno, line in enumerate(body, start=1):
                try:
                    entry = json.loads(line)
                    key, shard = entry["key"], entry["shard"]
                except (json.JSONDecodeError, KeyError, TypeError) as error:
                    raise StoreCorruptionError(
                        f"corrupt index line {lineno} in {self._index_path}: {error}"
                    )
                self._index[key] = shard
                counts[shard] = counts.get(shard, 0) + 1
        shard_dir = self.root / _SHARD_DIR
        for path in sorted(shard_dir.glob("*.jsonl")):
            shard = path.stem
            if counts.get(shard, 0):
                continue
            for key in self._load_shard(shard):
                if key not in self._index:
                    self._index[key] = shard
                    with self._locked():
                        _append_line(
                            self._index_append_handle(), {"key": key, "shard": shard}, self.fsync
                        )
        self._index_seen = self._index_fingerprint()

    def refresh(self) -> bool:
        """Make records appended by *other* handles of this store visible.

        Concurrent writer processes append to their own shard namespaces and
        to the shared index, but an open handle caches the index it loaded —
        so a long-lived reader (the HTTP result service above a live worker
        fleet) calls this between requests.  One ``stat`` of ``index.jsonl``
        when nothing changed; a reload of the index (plus invalidation of
        the parsed-shard cache, whose files may have grown) when it did.
        """
        refreshes = get_registry().counter(
            "repro_store_index_refreshes_total", "refresh() calls by outcome"
        )
        if self._index_fingerprint() == self._index_seen:
            refreshes.inc(changed="false")
            return False
        self._index = {}
        self._shard_cache = {}
        self._load_index()
        refreshes.inc(changed="true")
        return True

    def _iter_shard_lines(self, shard: str):
        path = self._shard_path(shard)
        if not path.exists():
            return
        body, _truncated = _split_lines(path.read_text(encoding="utf-8"))
        yield from body

    # ------------------------------------------------------------------
    # shard parsing
    # ------------------------------------------------------------------
    def _parse_shard(
        self, shard: str, salvage: bool = False
    ) -> Tuple[Dict[str, RunRecord], int]:
        """Parse one shard file into ``key -> record``; last write wins.

        A truncated final line is dropped (and counted).  With ``salvage``
        any undecodable or key-mismatched line is skipped and counted;
        without it, such a line raises ``StoreCorruptionError``.
        """
        path = self._shard_path(shard)
        records: Dict[str, RunRecord] = {}
        dropped = 0
        if not path.exists():
            return records, dropped
        body, truncated = _split_lines(path.read_text(encoding="utf-8"))
        if truncated:
            self._truncated_dropped += 1
        for lineno, line in enumerate(body, start=1):
            try:
                entry = json.loads(line)
                key = entry["key"]
                record = RunRecord.from_dict(entry["record"])
                if record.spec.key() != key:
                    raise StoreCorruptionError(
                        f"record in {path} line {lineno} does not hash to its key "
                        f"{key[:12]}… (content-address mismatch)"
                    )
            except StoreCorruptionError:
                if not salvage:
                    raise
                dropped += 1
                continue
            except Exception as error:
                if not salvage:
                    raise StoreCorruptionError(
                        f"corrupt shard line {lineno} in {path}: {error}"
                    )
                dropped += 1
                continue
            records[key] = record
        return records, dropped

    def _load_shard(self, shard: str) -> Dict[str, RunRecord]:
        if shard not in self._shard_cache:
            records, _dropped = self._parse_shard(shard, salvage=self.salvage)
            self._shard_cache[shard] = records
        return self._shard_cache[shard]

    # ------------------------------------------------------------------
    # core mapping
    # ------------------------------------------------------------------
    def get(self, key: KeyLike) -> Optional[RunRecord]:
        digest = self.key_of(key)
        shard = self._index.get(digest)
        if shard is None:
            return None
        record = self._load_shard(shard).get(digest)
        if record is None:
            # Index ahead of the shard (in-flight cell of a killed sweep).
            del self._index[digest]
            return None
        self._touch(digest)
        return record

    def _touch(self, key: str) -> None:
        self._last_read[key] = time.time()
        self._lastread_dirty = True

    def _append_record(self, key: str, record: RunRecord) -> None:
        shard = self._shard_for(key)
        nbytes = _append_line(
            self._shard_append_handle(shard),
            {"key": key, "record": record.to_dict()},
            self.fsync,
        )
        with self._locked():
            nbytes += _append_line(
                self._index_append_handle(), {"key": key, "shard": shard}, self.fsync
            )
        registry = get_registry()
        registry.counter(
            "repro_store_appends_total", "Records appended to the file store"
        ).inc()
        registry.counter(
            "repro_store_bytes_written_total", "Shard and index bytes appended"
        ).inc(nbytes)
        self._index[key] = shard
        if shard in self._shard_cache:
            # Keep the cache coherent; re-parse is wasteful for an append.
            self._shard_cache[shard][key] = record
        # Our own append is already visible; don't let refresh() reload for it.
        self._index_seen = self._index_fingerprint()
        self._touch(key)

    def put(self, record: RunRecord) -> str:
        key = record.spec.key()
        if key in self._index and self.get(key) is not None:
            return key
        self._append_record(key, record)
        return key

    def put_replace(self, record: RunRecord) -> str:
        """Append ``record`` even when its key is already stored.

        Within a shard the last line wins, and the freshly appended index
        line redirects readers to this writer's namespace — so the new
        payload shadows the old one until :meth:`gc` compacts it away.
        Used by ``merge --on-conflict theirs``; everything else should rely
        on the idempotent :meth:`put`.
        """
        key = record.spec.key()
        self._append_record(key, record)
        return key

    def keys(self) -> Tuple[str, ...]:
        return tuple(self._index)

    # ------------------------------------------------------------------
    # handles / lifecycle
    # ------------------------------------------------------------------
    def _shard_append_handle(self, shard: str) -> IO[str]:
        handle = self._handles.get(shard)
        if handle is None:
            path = self._shard_path(shard)
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = path.open("a", encoding="utf-8")
            self._handles[shard] = handle
        return handle

    def _index_append_handle(self) -> IO[str]:
        if self._index_handle is None:
            self._index_handle = self._index_path.open("a", encoding="utf-8")
        return self._index_handle

    def flush(self) -> None:
        for handle in self._handles.values():
            handle.flush()
        if self._index_handle is not None:
            self._index_handle.flush()
        self._persist_last_read()

    def _persist_last_read(self, keep: Optional[Dict[str, float]] = None) -> None:
        """Merge this handle's access stamps into ``lastread.json``.

        Merging (per-key max) under the advisory lock keeps concurrent
        writers from clobbering each other's stamps; ``keep`` replaces the
        merge outcome entirely (what :meth:`gc` uses after eviction).
        """
        if keep is None and not self._lastread_dirty:
            return
        with self._locked():
            if keep is not None:
                merged = dict(keep)
            else:
                try:
                    merged = {
                        str(key): float(stamp)
                        for key, stamp in json.loads(
                            self._lastread_path.read_text(encoding="utf-8")
                        ).items()
                        if isinstance(stamp, (int, float))
                    }
                except (OSError, json.JSONDecodeError, AttributeError):
                    merged = {}
                for key, stamp in self._last_read.items():
                    if merged.get(key, 0.0) < stamp:
                        merged[key] = stamp
            _atomic_write(
                self._lastread_path,
                json.dumps(merged, sort_keys=True, separators=(",", ":")) + "\n",
            )
        self._last_read = merged
        self._lastread_dirty = False

    def close(self) -> None:
        self.flush()
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
        if self._index_handle is not None:
            self._index_handle.close()
            self._index_handle = None

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def verify(self) -> Dict[str, int]:
        """Parse every shard strictly; raise on corruption, report counts."""
        records = 0
        for path in sorted((self.root / _SHARD_DIR).glob("*.jsonl")):
            parsed, _dropped = self._parse_shard(path.stem)
            records += len(parsed)
        return {"records": records, "truncated_dropped": self._truncated_dropped}

    def gc(
        self,
        *,
        max_records: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> Dict[str, int]:
        """Compact the store: drop corrupt/duplicate lines, rewrite the index.

        Every shard is re-parsed in salvage mode (undecodable and
        content-address-mismatched lines are discarded, duplicate keys keep
        the last write), writer namespaces are collapsed back into the
        canonical ``<prefix>.jsonl`` shards, shards are rewritten atomically,
        empty shards removed, and ``index.jsonl`` regenerated.

        ``max_records`` / ``max_bytes`` additionally bound the surviving
        store: least-recently-accessed records (by the advisory
        ``lastread.json`` stamps; never-accessed records go first) are
        evicted until both budgets hold — the bounded-cache story for
        long-running fleets.  Returns counters::

            {"kept": ..., "dropped_corrupt": ..., "dropped_duplicate": ...,
             "evicted": ..., "reclaimed_bytes": ...}
        """
        self.close()
        dropped_corrupt = 0
        total_lines = 0
        shard_paths = sorted((self.root / _SHARD_DIR).glob("*.jsonl"))
        before = sum(path.stat().st_size for path in shard_paths)
        merged: Dict[str, RunRecord] = {}
        for path in shard_paths:
            body, _ = _split_lines(path.read_text(encoding="utf-8"))
            records, dropped = self._parse_shard(path.stem, salvage=True)
            total_lines += len(body)
            dropped_corrupt += dropped
            merged.update(records)
        dropped_duplicate = max(0, total_lines - dropped_corrupt - len(merged))

        lines_of = {
            key: json.dumps(
                {"key": key, "record": record.to_dict()},
                sort_keys=True,
                separators=(",", ":"),
            )
            for key, record in merged.items()
        }
        evicted = 0
        if max_records is not None or max_bytes is not None:
            total_bytes = sum(len(line) + 1 for line in lines_of.values())
            # Oldest access first; never-accessed records (stamp 0.0) lead.
            for key in sorted(merged, key=lambda k: (self._last_read.get(k, 0.0), k)):
                over_records = max_records is not None and len(merged) > max_records
                over_bytes = max_bytes is not None and total_bytes > max_bytes
                if not (over_records or over_bytes):
                    break
                total_bytes -= len(lines_of.pop(key)) + 1
                del merged[key]
                evicted += 1

        by_shard: Dict[str, Dict[str, RunRecord]] = {}
        for key, record in merged.items():
            by_shard.setdefault(key[:2], {})[key] = record
        index_lines = []
        new_index: Dict[str, str] = {}
        with self._locked():
            for path in shard_paths:
                if path.stem not in by_shard:
                    path.unlink()
            for shard, records in sorted(by_shard.items()):
                _atomic_write(
                    self._shard_path(shard),
                    "\n".join(lines_of[key] for key in records) + "\n",
                )
                for key in records:
                    index_lines.append(
                        json.dumps({"key": key, "shard": shard}, sort_keys=True, separators=(",", ":"))
                    )
                    new_index[key] = shard
            _atomic_write(self._index_path, "\n".join(index_lines) + "\n" if index_lines else "")
        after = sum(
            path.stat().st_size for path in (self.root / _SHARD_DIR).glob("*.jsonl")
        )
        self._index = new_index
        self._index_seen = self._index_fingerprint()
        self._shard_cache = dict(by_shard)
        self._truncated_dropped = 0
        self._persist_last_read(
            keep={key: stamp for key, stamp in self._last_read.items() if key in new_index}
        )
        return {
            "kept": len(merged),
            "dropped_corrupt": dropped_corrupt,
            "dropped_duplicate": dropped_duplicate,
            "evicted": evicted,
            "reclaimed_bytes": max(0, before - after),
        }

    def rebuild_index(self) -> int:
        """Rewrite ``index.jsonl`` from a full shard scan; return the count.

        The shards stay untouched — this only reconciles the accelerator
        with them, e.g. after :func:`~repro.store.merge.merge_stores`
        appended records from shipped shards, or when an index is suspected
        stale.  Respects this handle's ``salvage`` tolerance.
        """
        if self._index_handle is not None:
            self._index_handle.close()
            self._index_handle = None
        entries: Dict[str, str] = {}
        with self._locked():
            for path in sorted((self.root / _SHARD_DIR).glob("*.jsonl")):
                for key in self._parse_shard(path.stem, salvage=self.salvage)[0]:
                    entries[key] = path.stem
            _atomic_write(
                self._index_path,
                "\n".join(
                    json.dumps({"key": key, "shard": shard}, sort_keys=True, separators=(",", ":"))
                    for key, shard in entries.items()
                )
                + "\n"
                if entries
                else "",
            )
        self._index = entries
        self._index_seen = self._index_fingerprint()
        return len(entries)

    def stats(self) -> Dict[str, Any]:
        shard_paths = list((self.root / _SHARD_DIR).glob("*.jsonl"))
        writers = {
            stem.split("--", 1)[1] if "--" in stem else ""
            for stem in (path.stem for path in shard_paths)
        }
        return {
            "backend": self.backend,
            "root": str(self.root),
            "records": len(self._index),
            "shards": len(shard_paths),
            "writers": len(writers),
            "bytes": sum(path.stat().st_size for path in shard_paths),
            "truncated_dropped": self._truncated_dropped,
            "last_read_tracked": len(self._last_read),
        }
