"""Cache-aware execution: a runner that consults a store before running.

:class:`CachingRunner` wraps the plain
:func:`~repro.runtime.runner.run` entry point with a
:class:`~repro.store.base.ResultStore`: a scenario whose
:func:`~repro.runtime.spec.spec_key` is already stored is served without
execution, anything else is run and persisted.  Sweeps get the same
behaviour in bulk through ``run_sweep(..., store=..., resume=...)``
(:mod:`repro.runtime.executors`), which additionally fans the misses out to
the configured executor.

Caching correctness rests on scenarios being deterministic functions of
their spec.  One sharp edge follows: a live ``model`` override must compute
the same results as the spec's named ``cost_model``, because records are
keyed by the spec alone (the experiment drivers pass the session-shared
instance of exactly that named model, which is fine).
"""

from __future__ import annotations

from typing import Optional

from ..exploration.cost_model import CostModel
from ..runtime.records import RunRecord
from ..runtime.spec import ScenarioSpec
from .base import ResultStore

__all__ = ["CachingRunner"]


class CachingRunner:
    """``run()`` with a read-through/write-through result store.

    >>> runner = CachingRunner(MemoryStore())
    >>> runner.run(spec)   # executes, stores
    >>> runner.run(spec)   # served from the store
    >>> runner.hits, runner.executed
    (1, 1)
    """

    def __init__(self, store: ResultStore, model: Optional[CostModel] = None) -> None:
        self.store = store
        self.model = model
        self.hits = 0
        self.executed = 0

    def run(self, spec: ScenarioSpec) -> RunRecord:
        from ..runtime.runner import run as _run  # lazy: keeps store imports light

        cached = self.store.get(spec.key())
        if cached is not None:
            self.hits += 1
            return cached
        record = _run(spec, model=self.model)
        self.store.put(record)
        self.executed += 1
        return record

    __call__ = run
