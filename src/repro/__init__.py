"""repro — reproduction of "How to Meet Asynchronously at Polynomial Cost".

The package implements, from scratch, every system the paper (Dieudonné,
Pelc, Villain, PODC 2013) describes or depends on:

* :mod:`repro.graphs` — anonymous port-labeled graphs and the families used
  in the experiments;
* :mod:`repro.exploration` — universal exploration sequences, the cost model
  (trajectory lengths, the bound ``Π(n, m)``) and Procedure ESST;
* :mod:`repro.core` — the trajectory constructions of §3.1, Algorithm
  RV-asynch-poly, the exponential baseline and the analytic bounds;
* :mod:`repro.sim` — the asynchronous adversarial execution engine (routes
  versus walks, meetings inside edges, cost accounting);
* :mod:`repro.teams` — Algorithm SGL and the four multi-agent applications
  (team size, leader election, perfect renaming, gossiping);
* :mod:`repro.analysis` — the experiment drivers regenerating the paper's
  figures and the derived tables of EXPERIMENTS.md;
* :mod:`repro.runtime` — the unified scenario runtime: declarative
  JSON-round-trippable specs, component registries, and batched
  (serial or multi-process) sweep execution.

Quickstart
----------
>>> from repro.graphs import families
>>> from repro.core import run_rendezvous
>>> result = run_rendezvous(families.ring(8), [(6, 0), (11, 4)])
>>> result.met
True
"""

from . import graphs, exploration, core, sim, teams, analysis, runtime

__version__ = "1.0.0"

__all__ = [
    "graphs",
    "exploration",
    "core",
    "sim",
    "teams",
    "analysis",
    "runtime",
    "__version__",
]
