"""Algorithm RV-asynch-poly — the paper's main contribution (§3.1).

An agent with label ``L`` transforms ``L`` into its modified label
``M(L) = (b1 b2 ... bs)`` and then, for ``k = 1, 2, 3, ...``, processes the
first ``min(k, s)`` bits of the modified label:

* processing bit 1 means following the trajectory ``B(2k, v)`` twice,
* processing bit 0 means following the trajectory ``A(4k, v)`` twice,
* consecutive bits within the same iteration are separated by a *border*
  ``K(k, v)``,
* the last bit of the iteration is followed by a *fence* ``Ω(k, v)``,

all anchored at the agent's starting node ``v``.  The trajectory never ends on
its own — the algorithm runs "until rendezvous" — so the agent program here is
an infinite generator; the execution engine stops it when the meeting occurs.

Theorem 3.1 guarantees that two agents running this algorithm in a graph of
size ``n`` meet before either performs ``Π(n, min(|L1|, |L2|))`` edge
traversals, a polynomial in ``n`` and in the length of the smaller label.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..exceptions import LabelError
from ..exploration.cost_model import CostModel, default_cost_model
from ..exploration.walker import Tape, WalkProgram
from ..graphs.port_graph import PortLabeledGraph
from ..sim.actions import Observation
from ..sim.agent import AgentController, AgentProgram
from ..sim.engine import AgentSpec, AsyncEngine
from ..sim.results import RunResult
from ..sim.schedulers import RoundRobinScheduler, Scheduler
from .labels import modified_label, validate_label
from .trajectories import traj_A, traj_X, traj_Y

__all__ = [
    "rv_route",
    "RendezvousController",
    "run_rendezvous",
]


def rv_route(
    label: int,
    model: CostModel,
    observation: Observation,
    tape: Optional[Tape] = None,
) -> WalkProgram:
    """The (infinite) walk generator of Algorithm RV-asynch-poly.

    Parameters
    ----------
    label:
        The agent's label ``L`` (a strictly positive integer).
    model:
        Cost model providing the exploration sequences and repetition counts.
    observation:
        The observation at the agent's starting node.
    tape:
        Optional pre-existing :class:`Tape`; by default a fresh one is used.
        (Algorithm SGL passes the traveller's tape so the walk can be resumed
        after the explorer interlude.)

    The generator yields :class:`~repro.sim.actions.Move` actions forever; it
    is the engine's (or the caller's) responsibility to stop pulling from it
    once the rendezvous has happened.
    """
    validate_label(label)
    bits = modified_label(label)
    s = len(bits)
    walk_tape = tape if tape is not None else Tape()
    obs = observation
    k = 1
    # The repetition trajectories B, K and Ω are unrolled to their defining
    # loops (B = Y repeated, K and Ω = X repeated) so the delegation chain
    # stays as short as possible: every extra generator frame between here
    # and the innermost walk is a resume paid per agent move.
    while True:
        limit = min(k, s)
        i = 1
        while i <= limit:
            if bits[i - 1] == 1:
                reps_B = model.repetitions_B(2 * k)
                for _ in range(2):
                    for _ in range(reps_B):
                        obs = yield from traj_Y(2 * k, model, walk_tape, obs)
            else:
                for _ in range(2):
                    obs = yield from traj_A(4 * k, model, walk_tape, obs)
            if limit > i:
                for _ in range(model.repetitions_K(k)):
                    obs = yield from traj_X(k, model, walk_tape, obs)
            else:
                for _ in range(model.repetitions_Omega(k)):
                    obs = yield from traj_X(k, model, walk_tape, obs)
            i += 1
        k += 1


class RendezvousController(AgentController):
    """Controller running Algorithm RV-asynch-poly with a given label."""

    def __init__(
        self,
        name: str,
        label: int,
        model: Optional[CostModel] = None,
    ) -> None:
        super().__init__(name, validate_label(label))
        self._model = model if model is not None else default_cost_model()
        self.public["label"] = label
        self.public["algorithm"] = "RV-asynch-poly"
        # The public dict is written only here, so the version never moves;
        # the engine may share one meeting snapshot for the whole run.
        self.public_version = 0

    @property
    def model(self) -> CostModel:
        """The cost model the agent runs under."""
        return self._model

    def start(self, observation: Observation) -> AgentProgram:
        return rv_route(self.label, self._model, observation)


def run_rendezvous(
    graph: PortLabeledGraph,
    placements: Iterable[Tuple[int, int]],
    scheduler: Optional[Scheduler] = None,
    model: Optional[CostModel] = None,
    max_traversals: int = 2_000_000,
    on_cost_limit: str = "raise",
) -> RunResult:
    """Run Algorithm RV-asynch-poly for two agents and return the result.

    Parameters
    ----------
    graph:
        The network.
    placements:
        Exactly two ``(label, start_node)`` pairs.  Labels must be distinct
        and start nodes must be distinct (the paper's setting).
    scheduler:
        Adversary strategy; defaults to a fair round-robin.
    model:
        Cost model; defaults to :func:`default_cost_model`.
    max_traversals, on_cost_limit:
        Passed to :class:`AsyncEngine`.

    Returns the engine's :class:`RunResult`; ``result.met`` indicates whether
    the agents met and ``result.cost()`` is the total number of edge
    traversals at the meeting.
    """
    placements = list(placements)
    if len(placements) != 2:
        raise LabelError("rendezvous involves exactly two agents")
    (label_a, start_a), (label_b, start_b) = placements
    if label_a == label_b:
        raise LabelError("the two agents must have distinct labels")
    model = model if model is not None else default_cost_model()
    controller_a = RendezvousController("agent-1", label_a, model)
    controller_b = RendezvousController("agent-2", label_b, model)
    engine = AsyncEngine(
        graph,
        [
            AgentSpec(controller_a, start_a),
            AgentSpec(controller_b, start_b),
        ],
        scheduler if scheduler is not None else RoundRobinScheduler(),
        rendezvous=("agent-1", "agent-2"),
        max_traversals=max_traversals,
        on_cost_limit=on_cost_limit,
    )
    return engine.run()
