"""The paper's primary contribution: Algorithm RV-asynch-poly and its pieces.

Public API
----------
* labels: :func:`~repro.core.labels.modified_label`,
  :func:`~repro.core.labels.first_difference`
* trajectories: the generators ``traj_X``, ``traj_Q``, ``traj_Y``, ``traj_Z``,
  ``traj_A``, ``traj_B``, ``traj_K``, ``traj_Omega`` and
  :func:`~repro.core.trajectories.trajectory_structure`
* the algorithm: :func:`~repro.core.rendezvous.run_rendezvous`,
  :class:`~repro.core.rendezvous.RendezvousController`
* the exponential baseline: :func:`~repro.core.baseline.run_baseline_rendezvous`,
  :class:`~repro.core.baseline.BaselineController`
* analytic bounds: :func:`~repro.core.bounds.compare_bounds`
"""

from .labels import (
    binary_bits,
    first_difference,
    label_length,
    modified_label,
    modified_label_length,
    validate_label,
)
from .trajectories import (
    TRAJECTORY_KINDS,
    traj_A,
    traj_A_prime,
    traj_B,
    traj_K,
    traj_Omega,
    traj_Q,
    traj_R,
    traj_X,
    traj_Y,
    traj_Y_prime,
    traj_Z,
    trajectory_structure,
)
from .rendezvous import RendezvousController, rv_route, run_rendezvous
from .baseline import BaselineController, baseline_route, run_baseline_rendezvous
from .bounds import BoundComparison, compare_bounds, growth_exponent_estimate

__all__ = [
    "binary_bits",
    "first_difference",
    "label_length",
    "modified_label",
    "modified_label_length",
    "validate_label",
    "TRAJECTORY_KINDS",
    "traj_A",
    "traj_A_prime",
    "traj_B",
    "traj_K",
    "traj_Omega",
    "traj_Q",
    "traj_R",
    "traj_X",
    "traj_Y",
    "traj_Y_prime",
    "traj_Z",
    "trajectory_structure",
    "RendezvousController",
    "rv_route",
    "run_rendezvous",
    "BaselineController",
    "baseline_route",
    "run_baseline_rendezvous",
    "BoundComparison",
    "compare_bounds",
    "growth_exponent_estimate",
]
