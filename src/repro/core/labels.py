"""Agent labels and the prefix-free label transformation of §3.1.

Agents carry distinct labels which are strictly positive integers.  Algorithm
RV-asynch-poly does not process the binary representation of the label
directly; it first applies the *modified label* transformation: if
``x = (c1 c2 ... cr)`` is the binary representation of the label, the modified
label is ``M(x) = (c1 c1 c2 c2 ... cr cr 0 1)`` — every bit doubled, followed
by the delimiter ``01``.

Two properties of ``M`` are what the algorithm exploits (and what the tests
verify):

* ``M(x)`` is never a prefix of ``M(y)`` for ``x ≠ y`` — so two distinct
  labels disagree at some position that both modified labels possess;
* ``M`` is injective.
"""

from __future__ import annotations

from typing import List, Tuple

from ..exceptions import LabelError

__all__ = [
    "validate_label",
    "binary_bits",
    "label_length",
    "modified_label",
    "modified_label_length",
    "first_difference",
]


def validate_label(label: int) -> int:
    """Validate that ``label`` is a strictly positive integer and return it."""
    if not isinstance(label, int) or isinstance(label, bool):
        raise LabelError(f"labels must be integers, got {label!r}")
    if label < 1:
        raise LabelError(f"labels must be strictly positive, got {label}")
    return label


def binary_bits(label: int) -> Tuple[int, ...]:
    """Return the binary representation of ``label`` as a tuple of bits.

    Most significant bit first; there are no leading zeros, so the length of
    the result is ``|label| = ceil(log2(label + 1))`` — the paper's ``|x|``.
    """
    validate_label(label)
    return tuple(int(bit) for bit in bin(label)[2:])


def label_length(label: int) -> int:
    """Return ``|label|``: the length of the binary representation."""
    return len(binary_bits(label))


def modified_label(label: int) -> Tuple[int, ...]:
    """Return the modified label ``M(x)`` of §3.1 as a tuple of bits.

    Every bit of the binary representation is doubled and the two-bit
    delimiter ``01`` is appended, so the result has length ``2 |label| + 2``.
    """
    bits = binary_bits(label)
    doubled: List[int] = []
    for bit in bits:
        doubled.append(bit)
        doubled.append(bit)
    doubled.append(0)
    doubled.append(1)
    return tuple(doubled)


def modified_label_length(label: int) -> int:
    """Return the length of ``M(label)`` (always ``2 |label| + 2``)."""
    return 2 * label_length(label) + 2


def first_difference(label_a: int, label_b: int) -> int:
    """Return the 1-based index of the first position where ``M(a)`` and ``M(b)`` differ.

    The paper's analysis (proof of Theorem 3.1) relies on the existence of a
    position ``λ`` with ``1 < λ ≤ l`` (``l`` the length of the shorter
    modified label) at which the two modified labels disagree; this function
    computes it.  Raises :class:`LabelError` if the labels are equal.
    """
    if label_a == label_b:
        raise LabelError("agents must have distinct labels")
    code_a = modified_label(label_a)
    code_b = modified_label(label_b)
    limit = min(len(code_a), len(code_b))
    for index in range(limit):
        if code_a[index] != code_b[index]:
            return index + 1
    # Unreachable: M(x) is never a prefix of M(y) for distinct labels.
    raise LabelError(
        "modified labels do not differ within the shorter one; "
        "this contradicts the prefix-freeness of the transformation"
    )
