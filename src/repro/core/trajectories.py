"""The trajectory constructions of §3.1 (Definitions 3.1 – 3.8).

Every construction is implemented as a *walk generator*: a generator that
yields :class:`~repro.sim.actions.Move` actions, receives
:class:`~repro.sim.actions.Observation` objects, and returns the observation
at its final node.  The generators compose with ``yield from`` exactly the way
the paper's definitions compose trajectories, and they are lazy — only the
moves an agent actually performs before meeting are ever produced, which is
what makes executing these (astronomically long) trajectories feasible.

Summary of the constructions (``v`` is the node where the walk starts):

* ``R(k, v)``   — the exploration walk of length ``P(k)`` (§2);
* ``X(k, v)``   — ``R(k, v)`` followed by a backtrack (Definition 3.1);
* ``Q(k, v)``   — ``X(1, v) X(2, v) ... X(k, v)`` (Definition 3.2);
* ``Y'(k, v)``  — follow ``R(k, v)``, inserting ``Q(k, ·)`` at every node of
  the trunk before each step and after the last (Definition 3.3, Figure 2);
* ``Y(k, v)``   — ``Y'(k, v)`` followed by a backtrack (Definition 3.3);
* ``Z(k, v)``   — ``Y(1, v) ... Y(k, v)`` (Definition 3.4, Figure 3);
* ``A'(k, v)``  — like ``Y'`` with ``Z(k, ·)`` insertions (Def. 3.5, Fig. 4);
* ``A(k, v)``   — ``A'(k, v)`` followed by a backtrack (Definition 3.5);
* ``B(k, v)``   — ``Y(k, v)`` repeated ``2 |A(4k)|`` times (Definition 3.6);
* ``K(k, v)``   — ``X(k, v)`` repeated ``2(|B(4k)| + |A(8k)|)`` times
  (Definition 3.7);
* ``Ω(k, v)``   — ``X(k, v)`` repeated ``(2k - 1) |K(k)|`` times (Def. 3.8).

All of X, Q, Y, Z, A, B, K and Ω start **and end** at the node where they are
invoked, which is why Algorithm RV-asynch-poly can chain them freely from the
agent's starting node.

The exact number of edge traversals of each construction is available without
executing it from :class:`~repro.exploration.cost_model.CostModel`
(``len_X``, ``len_Q``, ...); the test suite checks that the generators and the
closed forms agree.

:func:`trajectory_structure` produces the structural decompositions used to
regenerate the paper's Figures 1–4 (experiment F1–F4).
"""

from __future__ import annotations

from typing import Dict, List

from ..exceptions import ExplorationError
from ..exploration.cost_model import CostModel
from ..exploration.uxs import next_port
from ..exploration.walker import (
    _MOVES,
    _NO_ENTRY_PORT,
    Tape,
    WalkProgram,
    backtrack,
    follow_exploration,
    step,
)
from ..sim.actions import Move, Observation

__all__ = [
    "traj_R",
    "traj_X",
    "traj_Q",
    "traj_Y_prime",
    "traj_Y",
    "traj_Z",
    "traj_A_prime",
    "traj_A",
    "traj_B",
    "traj_K",
    "traj_Omega",
    "trajectory_structure",
    "TRAJECTORY_KINDS",
]


# ----------------------------------------------------------------------
# elementary walks
# ----------------------------------------------------------------------
def traj_R(k: int, model: CostModel, tape: Tape, obs: Observation) -> WalkProgram:
    """Follow ``R(k, ·)`` from the current node (the walk of §2)."""
    obs = yield from follow_exploration(tape, model.uxs_terms(k), obs)
    return obs


def traj_X(k: int, model: CostModel, tape: Tape, obs: Observation) -> WalkProgram:
    """Follow ``X(k, ·) = R(k, ·)`` then backtrack (Definition 3.1).

    The bodies of ``follow_exploration`` and ``backtrack`` are inlined (same
    arithmetic, same error messages, same tape protocol): X is the innermost
    loop of the borders and fences, so every delegation frame here is a
    resume paid on *every agent move*.  The golden equivalence suite and the
    closed-form length tests pin the emitted walk.
    """
    moves = _MOVES
    entry_ports = tape.entry_ports
    mark = len(entry_ports)
    entry = None
    for increment in model.uxs_terms(k):
        degree = obs.degree
        if degree <= 0:
            raise ExplorationError("cannot take a step from an isolated node")
        port = (increment if entry is None else entry + increment) % degree
        obs = yield moves[port] if 0 <= port < 64 else Move(port)
        entry = obs.entry_port
        if entry is None:
            raise ExplorationError(_NO_ENTRY_PORT)
        entry_ports.append(entry)
    for port in reversed(entry_ports[mark:]):
        obs = yield moves[port] if 0 <= port < 64 else Move(port)
        entry = obs.entry_port
        if entry is None:
            raise ExplorationError(_NO_ENTRY_PORT)
        entry_ports.append(entry)
    return obs


def traj_Q(k: int, model: CostModel, tape: Tape, obs: Observation) -> WalkProgram:
    """Follow ``Q(k, ·) = X(1, ·) X(2, ·) ... X(k, ·)`` (Definition 3.2)."""
    for i in range(1, k + 1):
        obs = yield from traj_X(i, model, tape, obs)
    return obs


# ----------------------------------------------------------------------
# trunk walks with insertions
# ----------------------------------------------------------------------
def _trunk_with_insertions(
    k: int,
    model: CostModel,
    tape: Tape,
    obs: Observation,
    insertion,
) -> WalkProgram:
    """Follow ``R(k, ·)`` but run ``insertion`` at every node of the trunk.

    ``insertion(model, tape, obs)`` must be a walk generator that returns the
    agent to the node where it was invoked.  The trunk steps use the entry
    ports of the *trunk walk itself* (not those of the detours), so the node
    sequence of the trunk is exactly ``R(k, v)``, as Definitions 3.3 and 3.5
    require.
    """
    trunk_entry: object = None  # a fresh R(k, v) application starts from port base 0
    for increment in model.uxs_terms(k):
        obs = yield from insertion(model, tape, obs)
        port = next_port(trunk_entry, increment, obs.degree)
        obs = yield from step(tape, port)
        trunk_entry = obs.entry_port
    obs = yield from insertion(model, tape, obs)
    return obs


def traj_Y_prime(k: int, model: CostModel, tape: Tape, obs: Observation) -> WalkProgram:
    """Follow ``Y'(k, ·)`` (Definition 3.3, Figure 2)."""

    def insertion(model: CostModel, tape: Tape, obs: Observation) -> WalkProgram:
        obs = yield from traj_Q(k, model, tape, obs)
        return obs

    obs = yield from _trunk_with_insertions(k, model, tape, obs, insertion)
    return obs


def traj_Y(k: int, model: CostModel, tape: Tape, obs: Observation) -> WalkProgram:
    """Follow ``Y(k, ·) = Y'(k, ·)`` then backtrack (Definition 3.3).

    Flattened into one generator frame: ``Y`` sits directly under the ``B``
    repetitions of RV-asynch-poly, so composing it out of
    ``Y' -> trunk -> insertion -> Q -> X`` delegations (the literal reading
    of the definition, kept in :func:`traj_Y_prime` for the structural API)
    would cost five generator resumes per agent move.  The emitted walk is
    identical — Definition 3.3 expanded: the trunk ``R(k, v)`` with a full
    ``Q(k, ·) = X(1)..X(k)`` detour at every trunk node, then the reversal
    of everything — and is pinned by the closed-form length tests.
    """
    moves = _MOVES
    entry_ports = tape.entry_ports
    uxs_terms = model.uxs_terms
    mark = len(entry_ports)
    trunk_entry: object = None
    trunk_terms = list(uxs_terms(k))
    for trunk_index in range(len(trunk_terms) + 1):
        # Q(k, ·): X(1) X(2) ... X(k), each X = R(i) then its reversal.
        for i in range(1, k + 1):
            x_mark = len(entry_ports)
            entry = None
            for increment in uxs_terms(i):
                degree = obs.degree
                if degree <= 0:
                    raise ExplorationError(
                        "cannot take a step from an isolated node"
                    )
                port = (increment if entry is None else entry + increment) % degree
                obs = yield moves[port] if 0 <= port < 64 else Move(port)
                entry = obs.entry_port
                if entry is None:
                    raise ExplorationError(_NO_ENTRY_PORT)
                entry_ports.append(entry)
            for port in reversed(entry_ports[x_mark:]):
                obs = yield moves[port] if 0 <= port < 64 else Move(port)
                entry = obs.entry_port
                if entry is None:
                    raise ExplorationError(_NO_ENTRY_PORT)
                entry_ports.append(entry)
        if trunk_index == len(trunk_terms):
            break
        # One trunk step of R(k, v): port base is the trunk's own entry port.
        increment = trunk_terms[trunk_index]
        degree = obs.degree
        if degree <= 0:
            raise ExplorationError("cannot take a step from an isolated node")
        port = (
            increment if trunk_entry is None else trunk_entry + increment
        ) % degree
        obs = yield moves[port] if 0 <= port < 64 else Move(port)
        trunk_entry = obs.entry_port
        if trunk_entry is None:
            raise ExplorationError(_NO_ENTRY_PORT)
        entry_ports.append(trunk_entry)
    # Reversal of the whole Y'(k, v) walk.
    for port in reversed(entry_ports[mark:]):
        obs = yield moves[port] if 0 <= port < 64 else Move(port)
        entry = obs.entry_port
        if entry is None:
            raise ExplorationError(_NO_ENTRY_PORT)
        entry_ports.append(entry)
    return obs


def traj_Z(k: int, model: CostModel, tape: Tape, obs: Observation) -> WalkProgram:
    """Follow ``Z(k, ·) = Y(1, ·) Y(2, ·) ... Y(k, ·)`` (Definition 3.4)."""
    for i in range(1, k + 1):
        obs = yield from traj_Y(i, model, tape, obs)
    return obs


def traj_A_prime(k: int, model: CostModel, tape: Tape, obs: Observation) -> WalkProgram:
    """Follow ``A'(k, ·)`` (Definition 3.5, Figure 4)."""

    def insertion(model: CostModel, tape: Tape, obs: Observation) -> WalkProgram:
        obs = yield from traj_Z(k, model, tape, obs)
        return obs

    obs = yield from _trunk_with_insertions(k, model, tape, obs, insertion)
    return obs


def traj_A(k: int, model: CostModel, tape: Tape, obs: Observation) -> WalkProgram:
    """Follow ``A(k, ·) = A'(k, ·)`` then backtrack (Definition 3.5).

    Like :func:`traj_Y`, flattened for depth rather than composed out of
    ``A' -> trunk -> insertion -> Z`` delegations: the walk is the trunk
    ``R(k, v)`` with a ``Z(k, ·) = Y(1)..Y(k)`` detour at every trunk node,
    then the reversal of everything.  Each ``Y`` is the flat single-frame
    generator above, so an agent inside an ``A`` is at most two frames below
    the route generator.
    """
    mark = tape.mark()
    trunk_entry: object = None
    for increment in model.uxs_terms(k):
        for i in range(1, k + 1):
            obs = yield from traj_Y(i, model, tape, obs)
        port = next_port(trunk_entry, increment, obs.degree)
        obs = yield from step(tape, port)
        trunk_entry = obs.entry_port
    for i in range(1, k + 1):
        obs = yield from traj_Y(i, model, tape, obs)
    obs = yield from backtrack(tape, mark, obs)
    return obs


# ----------------------------------------------------------------------
# repetition-based trajectories
# ----------------------------------------------------------------------
def traj_B(k: int, model: CostModel, tape: Tape, obs: Observation) -> WalkProgram:
    """Follow ``B(k, ·) = Y(k, ·)`` repeated ``2 |A(4k)|`` times (Def. 3.6)."""
    for _ in range(model.repetitions_B(k)):
        obs = yield from traj_Y(k, model, tape, obs)
    return obs


def traj_K(k: int, model: CostModel, tape: Tape, obs: Observation) -> WalkProgram:
    """Follow ``K(k, ·) = X(k, ·)`` repeated ``2(|B(4k)|+|A(8k)|)`` times (Def. 3.7)."""
    for _ in range(model.repetitions_K(k)):
        obs = yield from traj_X(k, model, tape, obs)
    return obs


def traj_Omega(k: int, model: CostModel, tape: Tape, obs: Observation) -> WalkProgram:
    """Follow ``Ω(k, ·) = X(k, ·)`` repeated ``(2k-1) |K(k)|`` times (Def. 3.8)."""
    for _ in range(model.repetitions_Omega(k)):
        obs = yield from traj_X(k, model, tape, obs)
    return obs


#: Mapping from trajectory kind name to (generator, length function name).
TRAJECTORY_KINDS = {
    "R": traj_R,
    "X": traj_X,
    "Q": traj_Q,
    "Y'": traj_Y_prime,
    "Y": traj_Y,
    "Z": traj_Z,
    "A'": traj_A_prime,
    "A": traj_A,
    "B": traj_B,
    "K": traj_K,
    "Omega": traj_Omega,
}


# ----------------------------------------------------------------------
# structural decomposition (Figures 1 - 4)
# ----------------------------------------------------------------------
def trajectory_structure(kind: str, k: int, model: CostModel) -> Dict[str, object]:
    """Return the structural decomposition of a trajectory, without executing it.

    The result describes the trajectory the way the paper's Figures 1–4 do:
    which sub-trajectories it is made of, how many times each is repeated, and
    the exact length of everything.  Used by experiment F1–F4 and by the
    structural tests.
    """
    if k < 1:
        raise ExplorationError("trajectory parameter must be >= 1")
    if kind == "R":
        return {"kind": "R", "k": k, "length": model.len_R(k), "components": []}
    if kind == "X":
        return {
            "kind": "X",
            "k": k,
            "length": model.len_X(k),
            "components": [
                {"kind": "R", "k": k, "length": model.len_R(k)},
                {"kind": "reverse(R)", "k": k, "length": model.len_R(k)},
            ],
        }
    if kind == "Q":
        return {
            "kind": "Q",
            "k": k,
            "length": model.len_Q(k),
            "components": [
                {"kind": "X", "k": i, "length": model.len_X(i)} for i in range(1, k + 1)
            ],
        }
    if kind == "Y'":
        trunk_nodes = model.P(k) + 1
        return {
            "kind": "Y'",
            "k": k,
            "length": model.len_Y_prime(k),
            "trunk_length": model.P(k),
            "components": [
                {
                    "kind": "Q",
                    "k": k,
                    "length": model.len_Q(k),
                    "repetitions": trunk_nodes,
                },
                {"kind": "trunk edges", "k": k, "length": model.P(k)},
            ],
        }
    if kind == "Y":
        return {
            "kind": "Y",
            "k": k,
            "length": model.len_Y(k),
            "components": [
                {"kind": "Y'", "k": k, "length": model.len_Y_prime(k)},
                {"kind": "reverse(Y')", "k": k, "length": model.len_Y_prime(k)},
            ],
        }
    if kind == "Z":
        return {
            "kind": "Z",
            "k": k,
            "length": model.len_Z(k),
            "components": [
                {"kind": "Y", "k": i, "length": model.len_Y(i)} for i in range(1, k + 1)
            ],
        }
    if kind == "A'":
        trunk_nodes = model.P(k) + 1
        return {
            "kind": "A'",
            "k": k,
            "length": model.len_A_prime(k),
            "trunk_length": model.P(k),
            "components": [
                {
                    "kind": "Z",
                    "k": k,
                    "length": model.len_Z(k),
                    "repetitions": trunk_nodes,
                },
                {"kind": "trunk edges", "k": k, "length": model.P(k)},
            ],
        }
    if kind == "A":
        return {
            "kind": "A",
            "k": k,
            "length": model.len_A(k),
            "components": [
                {"kind": "A'", "k": k, "length": model.len_A_prime(k)},
                {"kind": "reverse(A')", "k": k, "length": model.len_A_prime(k)},
            ],
        }
    if kind == "B":
        return {
            "kind": "B",
            "k": k,
            "length": model.len_B(k),
            "components": [
                {
                    "kind": "Y",
                    "k": k,
                    "length": model.len_Y(k),
                    "repetitions": model.repetitions_B(k),
                }
            ],
        }
    if kind == "K":
        return {
            "kind": "K",
            "k": k,
            "length": model.len_K(k),
            "components": [
                {
                    "kind": "X",
                    "k": k,
                    "length": model.len_X(k),
                    "repetitions": model.repetitions_K(k),
                }
            ],
        }
    if kind in ("Omega", "Ω"):
        return {
            "kind": "Omega",
            "k": k,
            "length": model.len_Omega(k),
            "components": [
                {
                    "kind": "X",
                    "k": k,
                    "length": model.len_X(k),
                    "repetitions": model.repetitions_Omega(k),
                }
            ],
        }
    raise ExplorationError(f"unknown trajectory kind {kind!r}")
