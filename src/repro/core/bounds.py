"""Analytic cost bounds: Theorem 3.1's ``Π(n, m)`` versus the exponential baseline.

The quantitative content of the paper is a comparison of worst-case bounds:

* the prior state of the art guarantees rendezvous only after a number of
  edge traversals exponential in the size of the graph and in the (larger)
  label;
* Algorithm RV-asynch-poly guarantees rendezvous after at most ``Π(n, m)``
  edge traversals, a polynomial in the size ``n`` and in ``m``, the binary
  length of the *smaller* label.

This module packages both bounds (they are computed by the cost model) into
comparison records used by experiment E3 and by the CLI.  It also exposes the
log–log slope estimator used to check empirically that ``Π`` grows
polynomially while the baseline bound grows exponentially.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..exploration.cost_model import CostModel, PaperCostModel

__all__ = ["BoundComparison", "compare_bounds", "growth_exponent_estimate"]


@dataclass(frozen=True)
class BoundComparison:
    """Worst-case guarantees for one parameter setting.

    Attributes
    ----------
    n:
        Graph size.
    label:
        The (smaller) agent label ``L``.
    label_length:
        Binary length ``|L|``.
    rv_bound:
        ``Π(n, |L|)`` — the guarantee of Theorem 3.1.
    baseline_bound:
        ``(2P(n)+1)^L · 2P(n)`` — the trajectory length of the naive
        exponential algorithm (its cost when the adversary delays the other
        agent until it stops).
    """

    n: int
    label: int
    label_length: int
    rv_bound: int
    baseline_bound: int

    @property
    def improvement_factor(self) -> float:
        """How many times smaller the polynomial guarantee is (may be < 1 for tiny inputs)."""
        if self.rv_bound == 0:
            return math.inf
        return self.baseline_bound / self.rv_bound


def compare_bounds(
    sizes: Sequence[int],
    labels: Sequence[int],
    model: Optional[CostModel] = None,
) -> List[BoundComparison]:
    """Compute bound comparisons over a grid of sizes and labels."""
    model = model if model is not None else PaperCostModel()
    comparisons: List[BoundComparison] = []
    for n in sizes:
        for label in labels:
            label_length = label.bit_length()
            comparisons.append(
                BoundComparison(
                    n=n,
                    label=label,
                    label_length=label_length,
                    rv_bound=model.pi_bound(n, label_length),
                    baseline_bound=model.baseline_trajectory_length(n, label),
                )
            )
    return comparisons


def growth_exponent_estimate(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Estimate the exponent ``e`` of a power law ``y ≈ c · x^e`` by log–log regression.

    A polynomial of degree ``d`` yields an estimate close to ``d`` (and, in
    particular, bounded); an exponential yields an estimate that keeps growing
    with the range of ``x``.  Used by the bound and scaling experiments.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs with matching lengths")
    log_x = [math.log(float(x)) for x in xs]
    log_y = [math.log(float(y)) for y in ys]
    mean_x = sum(log_x) / len(log_x)
    mean_y = sum(log_y) / len(log_y)
    numerator = sum((lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y))
    denominator = sum((lx - mean_x) ** 2 for lx in log_x)
    if denominator == 0:
        raise ValueError("all x values are identical; cannot fit a power law")
    return numerator / denominator
