"""The exponential-cost baseline algorithm (start of §3).

Before presenting RV-asynch-poly, the paper sketches the "naive" use of the
integral-trajectory observation: an agent with label ``L`` starting at node
``v`` of a graph of **known** size ``n`` follows the trajectory

    ``(R(n, v) R̄(n, v)) ^ (2 P(n) + 1) ^ L``   (i.e. ``X(n, v)`` repeated
    ``(2 P(n) + 1)^L`` times)

and then stops.  The number of integral trajectories performed by the agent
with the larger label exceeds the total number of edge traversals of the
smaller agent's whole trajectory, so a meeting is guaranteed — but the cost is
exponential in the label ``L`` and the algorithm needs to know ``n``.  This is
representative of the prior state of the art ([17, 18] are exponential in the
size of the graph and in the larger label).

This module implements that baseline so the experiments can exhibit the
exponential-versus-polynomial separation that is the paper's headline result
(experiments E1–E3).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..exceptions import LabelError
from ..exploration.cost_model import CostModel, default_cost_model
from ..exploration.walker import Tape, WalkProgram
from ..graphs.port_graph import PortLabeledGraph
from ..sim.actions import Observation
from ..sim.agent import AgentController, AgentProgram
from ..sim.engine import AgentSpec, AsyncEngine
from ..sim.results import RunResult
from ..sim.schedulers import RoundRobinScheduler, Scheduler
from .labels import validate_label
from .trajectories import traj_X

__all__ = [
    "baseline_route",
    "BaselineController",
    "run_baseline_rendezvous",
]


def baseline_route(
    label: int,
    known_size: int,
    model: CostModel,
    observation: Observation,
) -> WalkProgram:
    """The finite walk of the naive algorithm: ``X(n, v)`` repeated ``(2P(n)+1)^L`` times.

    The generator returns (and hence the agent stops) after the last
    repetition; the stopped agent remains at its starting node and can still
    be met by the other agent.
    """
    validate_label(label)
    if known_size < 1:
        raise LabelError("the baseline needs a size bound of at least 1")
    tape = Tape()
    repetitions = model.baseline_repetitions(known_size, label)
    obs = observation
    for _ in range(repetitions):
        obs = yield from traj_X(known_size, model, tape, obs)
    return obs


class BaselineController(AgentController):
    """Controller running the naive exponential algorithm with a known size bound."""

    def __init__(
        self,
        name: str,
        label: int,
        known_size: int,
        model: Optional[CostModel] = None,
    ) -> None:
        super().__init__(name, validate_label(label))
        self._model = model if model is not None else default_cost_model()
        self._known_size = known_size
        self.public["label"] = label
        self.public["algorithm"] = "naive-exponential"

    @property
    def known_size(self) -> int:
        """The size bound the agent was given (the baseline requires one)."""
        return self._known_size

    def start(self, observation: Observation) -> AgentProgram:
        return baseline_route(self.label, self._known_size, self._model, observation)


def run_baseline_rendezvous(
    graph: PortLabeledGraph,
    placements: Iterable[Tuple[int, int]],
    known_size: Optional[int] = None,
    scheduler: Optional[Scheduler] = None,
    model: Optional[CostModel] = None,
    max_traversals: int = 2_000_000,
    on_cost_limit: str = "raise",
) -> RunResult:
    """Run the naive exponential algorithm for two agents and return the result.

    ``known_size`` defaults to the true size of the graph (the baseline is
    allowed to know it; RV-asynch-poly is not).
    """
    placements = list(placements)
    if len(placements) != 2:
        raise LabelError("rendezvous involves exactly two agents")
    (label_a, start_a), (label_b, start_b) = placements
    if label_a == label_b:
        raise LabelError("the two agents must have distinct labels")
    model = model if model is not None else default_cost_model()
    size_bound = known_size if known_size is not None else graph.size
    controller_a = BaselineController("agent-1", label_a, size_bound, model)
    controller_b = BaselineController("agent-2", label_b, size_bound, model)
    engine = AsyncEngine(
        graph,
        [
            AgentSpec(controller_a, start_a),
            AgentSpec(controller_b, start_b),
        ],
        scheduler if scheduler is not None else RoundRobinScheduler(),
        rendezvous=("agent-1", "agent-2"),
        max_traversals=max_traversals,
        on_cost_limit=on_cost_limit,
    )
    return engine.run()
