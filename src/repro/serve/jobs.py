"""Sweep jobs: the write path of the result service over the queue fabric.

A *job* is one ``POST /sweeps`` — a :class:`~repro.runtime.spec.SweepSpec`
dispatched onto a :class:`~repro.distrib.queue.WorkQueue` — remembered as a
small JSON file under ``<queue>/jobs/<job_id>.json`` so status and progress
survive a service restart.  Job ids are **content keys** (a hash of the
dispatched unit-id list), which makes submission idempotent exactly like
dispatch itself: re-POSTing the same sweep returns the same job instead of
queuing duplicate work.

The service never executes sweep cells itself — workers (``repro worker
--queue DIR``) drain the units into their own shards, and a ``repro store
merge`` (or shard shipping) folds the records into the serving store.  The
job layer only *observes*: status and progress are pure reads of the
queue's unit / claim / done files, and cancel tombstones unclaimed units
through :meth:`~repro.distrib.queue.WorkQueue.cancel_unit`.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..distrib.dispatcher import DEFAULT_UNIT_SIZE, Dispatcher
from ..distrib.queue import WorkQueue
from ..exceptions import QueueError, ReproError
from ..runtime.spec import SweepSpec, canonical_json
from ..store.base import ResultStore

__all__ = ["SweepJobs", "job_id"]

_JOBS_DIR = "jobs"


def job_id(unit_ids: List[str]) -> str:
    """Content key of a job: sha256 over its ordered dispatched unit ids."""
    payload = f"repro.SweepJob.v1:{canonical_json(list(unit_ids))}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class SweepJobs:
    """Dispatch, observe and cancel sweep jobs on one work queue."""

    def __init__(
        self,
        queue: Union[WorkQueue, str, Path],
        *,
        store: Optional[ResultStore] = None,
        unit_size: int = DEFAULT_UNIT_SIZE,
    ) -> None:
        self.queue = queue if isinstance(queue, WorkQueue) else WorkQueue(queue, create=True)
        self.store = store
        self.unit_size = unit_size
        self.jobs_root.mkdir(parents=True, exist_ok=True)
        # The serve tier journals under its own writer, so job submissions
        # and cancellations interleave (file-wise) with nobody.
        with contextlib.suppress(ReproError, OSError):
            self.queue.attach_journal(f"serve-{os.getpid()}")

    def _emit(self, type: str, **fields: Any) -> None:
        journal = self.queue.attached_journal
        if journal is not None:
            with contextlib.suppress(OSError):
                journal.append(type, **fields)

    @property
    def jobs_root(self) -> Path:
        return self.queue.root / _JOBS_DIR

    def job_path(self, jid: str) -> Path:
        return self.jobs_root / f"{jid}.json"

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, sweep: SweepSpec, *, unit_size: Optional[int] = None) -> Dict[str, Any]:
        """Dispatch ``sweep`` onto the queue; return the (persisted) job doc.

        Cells the serving store already holds are skipped (they need no
        computation to be servable), so a job over fully cached data has no
        units and is born ``done``.  Idempotent: the same sweep maps to the
        same unit set, hence the same job id and file.
        """
        report = Dispatcher(
            self.queue, unit_size=unit_size or self.unit_size
        ).dispatch(sweep, store=self.store)
        jid = job_id(report["unit_ids"])
        job = {
            "job": jid,
            "sweep_name": sweep.name,
            "created": time.time(),
            "cells": report["cells"],
            "skipped_cached": report["skipped_cached"],
            "unit_ids": report["unit_ids"],
        }
        path = self.job_path(jid)
        if not path.exists():
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(job, sort_keys=True, separators=(",", ":")) + "\n",
                encoding="utf-8",
            )
            tmp.replace(path)
            self._emit(
                "job.submit",
                job=jid,
                sweep_name=sweep.name,
                cells=report["cells"],
                skipped_cached=report["skipped_cached"],
                units=len(report["unit_ids"]),
            )
        return job

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def load(self, jid: str) -> Dict[str, Any]:
        try:
            data = json.loads(self.job_path(jid).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            raise QueueError(f"no sweep job {jid!r} on queue {self.queue.root}")
        if not isinstance(data, dict) or "unit_ids" not in data:
            raise QueueError(f"unreadable sweep job {jid!r} on queue {self.queue.root}")
        return data

    def jobs(self) -> List[str]:
        """All known job ids, sorted."""
        return sorted(path.stem for path in self.jobs_root.glob("*.json"))

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    @staticmethod
    def _state_of(counts: Dict[str, int]) -> str:
        if counts["units"] == counts["done"]:
            return "done"
        if counts["cancelled"] and not (counts["pending"] or counts["claimed"]):
            return "cancelled"
        if counts["claimed"]:
            return "running"
        return "pending"

    def status(self, jid: str, now: Optional[float] = None) -> Dict[str, Any]:
        """The job's aggregate lifecycle state (``GET /sweeps/<id>/status``).

        ``state`` is ``pending`` (nothing leased yet), ``running`` (at least
        one active lease), ``done`` (every unit has a genuine done marker) or
        ``cancelled`` (no work left, but some units were tombstoned).
        """
        job = self.load(jid)
        states = self.queue.unit_states(job["unit_ids"], now=now)
        counts = {
            "units": len(states),
            "done": sum(1 for s in states if s["state"] == "done"),
            "cancelled": sum(1 for s in states if s["state"] == "cancelled"),
            "claimed": sum(1 for s in states if s["state"] == "claimed"),
            "pending": sum(1 for s in states if s["state"] == "pending"),
        }
        finished = [s for s in states if s["state"] == "done"]
        return {
            "job": jid,
            "state": self._state_of(counts),
            "units": counts,
            "cells": {
                "total": job["cells"],
                "skipped_cached": job["skipped_cached"],
                "executed": sum(s["executed"] for s in finished),
                "salvaged": sum(s["salvaged"] for s in finished),
                "cached": sum(s["cached"] for s in finished),
            },
        }

    def progress(self, jid: str, now: Optional[float] = None) -> Dict[str, Any]:
        """Per-unit live progress (``GET /sweeps/<id>/progress``)."""
        job = self.load(jid)
        states = self.queue.unit_states(job["unit_ids"], now=now)
        cells_total = sum(s["cells"] for s in states)
        cells_done = sum(
            s["cells"] for s in states if s["state"] in ("done", "cancelled")
        )
        return {
            "job": jid,
            "units": states,
            "cells_done": cells_done,
            "cells_total": cells_total,
            "fraction": (cells_done / cells_total) if cells_total else 1.0,
        }

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, jid: str) -> Dict[str, Any]:
        """Tombstone the job's unclaimed units (``POST /sweeps/<id>/cancel``).

        Actively leased units are left to their workers — cancellation stops
        *future* work, it does not abort in-flight computation.
        """
        job = self.load(jid)
        outcomes: Dict[str, int] = {
            "cancelled": 0,
            "already_done": 0,
            "already_cancelled": 0,
            "claimed": 0,
        }
        for uid in job["unit_ids"]:
            outcomes[self.queue.cancel_unit(uid)] += 1
        self._emit("job.cancel", job=jid, **outcomes)
        return {"job": jid, **outcomes}

    def in_flight(self) -> int:
        """Jobs whose units are not all finished (a /metrics gauge)."""
        running = 0
        for jid in self.jobs():
            try:
                if self.status(jid)["state"] in ("pending", "running"):
                    running += 1
            except QueueError:  # pragma: no cover - racing a concurrent delete
                continue
        return running
