"""The HTTP result service: the store + experiments + queue fabric as an API.

A deliberately minimal serving tier — stdlib ``http.server`` only, one
:class:`ResultService` whose :meth:`~ResultService.handle` maps a parsed
request to a :class:`Response` without touching a socket (which is what the
tests drive), and a thin :class:`ThreadingHTTPServer` wrapper around it.

Read path
---------
``GET /experiments/<name>`` renders a registered experiment through the
same :func:`~repro.analysis.experiment_spec.aggregate_from_store` /
:func:`~repro.analysis.experiment_spec.run_experiment` pipeline as the CLI,
so the bytes served equal the bytes ``repro experiment`` prints.  Every
response carries an ETag built from the experiment's content hash
(:func:`~repro.analysis.experiment_spec.experiment_key`) and the store's
:meth:`~repro.store.base.ResultStore.generation` stamp: a repeat request
with ``If-None-Match`` is answered ``304 Not Modified`` from the two hashes
alone — no record reads, no aggregation, no rendering, and never an
execution.  Unconditional repeats hit a bounded rendered-bytes cache keyed
by the same ETag.  ``GET /runs`` pages the store's canonical-order query
layer; ``GET /runs/<key>`` fetches one record by (a unique prefix of) its
content address.

Write path
----------
``POST /sweeps`` dispatches a :class:`~repro.runtime.spec.SweepSpec` onto
the queue fabric and returns a content-keyed job id (see
:mod:`repro.serve.jobs`); ``GET /sweeps/<id>/status`` / ``…/progress``
observe the unit lease/done files; ``POST /sweeps/<id>/cancel`` tombstones
unclaimed units.  The service itself never executes sweep cells — workers
drain the queue, and a store merge makes their records servable.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, NamedTuple, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..analysis.experiment_spec import (
    EXPERIMENTS,
    ExperimentSpec,
    aggregate_from_store,
    experiment_spec,
    run_experiment,
)
from ..analysis.render import FORMATS
from ..distrib.dispatcher import DEFAULT_UNIT_SIZE
from ..distrib.queue import WorkQueue
from ..exceptions import QueueError, ReproError
from ..runtime.records import RunRecord
from ..runtime.spec import SweepSpec
from ..store.base import ResultStore
from .jobs import SweepJobs

__all__ = ["Response", "ResultService", "make_server", "DEFAULT_PORT"]

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 8642

#: Rendered-bytes cache entries kept per service (FIFO eviction).
_RENDER_CACHE_SIZE = 128

#: MIME type per table format.
_CONTENT_TYPES = {
    "markdown": "text/markdown; charset=utf-8",
    "csv": "text/csv; charset=utf-8",
    "json": "application/json; charset=utf-8",
}

#: Most /runs a single page may return.
MAX_PAGE_LIMIT = 1000

#: Default /runs page size.
DEFAULT_PAGE_LIMIT = 50


class Response(NamedTuple):
    """One materialised HTTP response: status, extra headers, body bytes."""

    status: int
    headers: Dict[str, str]
    body: bytes


class _HTTPError(Exception):
    """Internal control flow: unwound into a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _json_response(
    payload: Any, status: int = 200, headers: Optional[Dict[str, str]] = None
) -> Response:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    merged = {"Content-Type": _CONTENT_TYPES["json"]}
    if headers:
        merged.update(headers)
    return Response(status, merged, body)


def _int_param(params: Dict[str, str], name: str, default: int) -> int:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise _HTTPError(400, f"query parameter {name!r} must be an integer, got {raw!r}")


def _run_summary(record: RunRecord) -> Dict[str, Any]:
    key = record.spec.key()
    return {
        "key": key,
        "problem": record.problem,
        "family": record.family,
        "n": record.graph_size,
        "seed": record.seed,
        "scheduler": record.scheduler,
        "ok": record.ok,
        "cost": record.cost,
        "url": f"/runs/{key}",
    }


class ResultService:
    """The routing/cache/metrics core of ``repro serve`` (socket-free).

    Parameters
    ----------
    store:
        The serving :class:`~repro.store.base.ResultStore`.  A
        :class:`~repro.store.filestore.FileStore` is refreshed before every
        read, so records appended by concurrent workers (or a ``store
        merge``) become servable without a restart.
    queue:
        Optional work-queue directory (or open
        :class:`~repro.distrib.queue.WorkQueue`) enabling the ``/sweeps``
        write path; without it those endpoints answer ``503``.
    unit_size:
        Default cells per dispatched work unit for ``POST /sweeps``.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        queue: Optional[Union[WorkQueue, str]] = None,
        unit_size: int = DEFAULT_UNIT_SIZE,
    ) -> None:
        self.store = store
        self.jobs = (
            None if queue is None else SweepJobs(queue, store=store, unit_size=unit_size)
        )
        self._lock = threading.RLock()
        self._render_cache: "OrderedDict[Tuple[str, str, str], Tuple[Response, str]]" = (
            OrderedDict()
        )
        self.metrics: Dict[str, Any] = {
            "requests_total": 0,
            "requests": {},
            "errors": 0,
            "etag_not_modified": 0,
            "render_cache_hits": 0,
            "render_cache_misses": 0,
            "renders": 0,
            "experiment_executions": 0,
            "sweeps_dispatched": 0,
            "sweeps_cancelled": 0,
        }

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
        body: bytes = b"",
    ) -> Response:
        """Answer one request.  Thread-safe; never raises for request errors
        (they become JSON ``4xx``/``5xx`` bodies), so every handler thread
        of the HTTP server funnels through here without ceremony."""
        params = params or {}
        headers = {key.lower(): value for key, value in (headers or {}).items()}
        with self._lock:
            self.metrics["requests_total"] += 1
            try:
                route, response = self._route(method, path, params, headers, body)
            except _HTTPError as error:
                route, response = "error", _json_response(
                    {"error": str(error)}, status=error.status
                )
                self.metrics["errors"] += 1
            except ReproError as error:
                route, response = "error", _json_response(
                    {"error": str(error)}, status=400
                )
                self.metrics["errors"] += 1
            by_route = self.metrics["requests"]
            by_route[route] = by_route.get(route, 0) + 1
            return response

    def _route(
        self,
        method: str,
        path: str,
        params: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ) -> Tuple[str, Response]:
        parts = [part for part in path.split("/") if part]
        if not parts:
            return "index", self._index()
        head, rest = parts[0], parts[1:]
        if head == "healthz" and not rest:
            self._need(method, "GET")
            return "healthz", _json_response({"ok": True})
        if head == "metrics" and not rest:
            self._need(method, "GET")
            return "metrics", self._metrics()
        if head == "experiments":
            self._need(method, "GET")
            if not rest:
                return "experiments", self._list_experiments()
            if len(rest) == 1:
                return "experiment", self._get_experiment(rest[0], params, headers)
        if head == "runs":
            self._need(method, "GET")
            if not rest:
                return "runs", self._list_runs(params)
            if len(rest) == 1:
                return "run", self._get_run(rest[0])
        if head == "sweeps":
            if not rest:
                self._need(method, "POST")
                return "sweep_submit", self._submit_sweep(body)
            if len(rest) == 2 and rest[1] in ("status", "progress", "cancel"):
                self._need(method, "POST" if rest[1] == "cancel" else "GET")
                return f"sweep_{rest[1]}", self._sweep(rest[1], rest[0])
        raise _HTTPError(404, f"no such endpoint: {method} {path}")

    @staticmethod
    def _need(method: str, expected: str) -> None:
        if method != expected:
            raise _HTTPError(405, f"method {method} not allowed (use {expected})")

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def _index(self) -> Response:
        return _json_response(
            {
                "service": "repro serve",
                "endpoints": {
                    "GET /healthz": "liveness probe",
                    "GET /metrics": "request / cache / execution counters",
                    "GET /experiments": "registered experiments",
                    "GET /experiments/<name>?format=markdown|csv|json": (
                        "rendered experiment table (ETag: experiment key + store generation)"
                    ),
                    "GET /runs?problem=&family=&scheduler=&n_min=&n_max=&ok=&limit=&offset=": (
                        "stored run records, canonical order, paginated"
                    ),
                    "GET /runs/<spec_key>": "one stored record (unique prefixes allowed)",
                    "POST /sweeps": "dispatch a SweepSpec onto the work queue",
                    "GET /sweeps/<id>/status": "aggregate job state",
                    "GET /sweeps/<id>/progress": "per-unit lease/done detail",
                    "POST /sweeps/<id>/cancel": "tombstone the job's unclaimed units",
                },
                "sweeps_enabled": self.jobs is not None,
            }
        )

    def _metrics(self) -> Response:
        payload = dict(self.metrics)
        payload["store_records"] = len(self.store)
        payload["render_cache_entries"] = len(self._render_cache)
        payload["sweeps_in_flight"] = 0 if self.jobs is None else self.jobs.in_flight()
        return _json_response(payload)

    def _list_experiments(self) -> Response:
        experiments = []
        for name in EXPERIMENTS.names():
            spec = experiment_spec(name)
            experiments.append(
                {
                    "name": name,
                    "title": spec.title,
                    "cells": len(spec.cell_specs()),
                    "url": f"/experiments/{name}",
                }
            )
        return _json_response({"experiments": experiments})

    def _etag(self, spec: ExperimentSpec) -> str:
        return f'"{spec.key()}.{self.store.generation()}"'

    def _get_experiment(
        self, name: str, params: Dict[str, str], headers: Dict[str, str]
    ) -> Response:
        format = params.get("format", "markdown")
        if format not in FORMATS:
            raise _HTTPError(
                400, f"unknown format {format!r}; available: {sorted(FORMATS)}"
            )
        try:
            spec = experiment_spec(name)
        except ReproError as error:
            raise _HTTPError(404, str(error))
        self.store.refresh()
        etag = self._etag(spec)
        if_none_match = headers.get("if-none-match", "")
        if if_none_match and (etag in if_none_match or if_none_match.strip() == "*"):
            # The warm-hit fast path: two hashes decided nothing changed —
            # zero record reads, zero renders, zero executions.
            self.metrics["etag_not_modified"] += 1
            return Response(304, {"ETag": etag}, b"")
        cache_key = (name, format, etag)
        cached = self._render_cache.get(cache_key)
        if cached is not None:
            self.metrics["render_cache_hits"] += 1
            self._render_cache.move_to_end(cache_key)
            return cached[0]
        self.metrics["render_cache_misses"] += 1
        try:
            result = aggregate_from_store(spec, self.store)
        except ReproError:
            # Cold: some cells are not stored yet.  Execute them through the
            # ordinary experiment pipeline (persisting as they complete),
            # then restamp the ETag — the store generation just moved.
            result = run_experiment(spec, store=self.store)
            self.metrics["experiment_executions"] += result.executed
            etag = self._etag(spec)
            cache_key = (name, format, etag)
        self.metrics["renders"] += 1
        body = (result.render(format) + "\n").encode("utf-8")
        base_headers = {
            "Content-Type": _CONTENT_TYPES[format],
            "ETag": etag,
            "X-Repro-Cells": str(len(result.records)),
        }
        response = Response(
            200, {**base_headers, "X-Repro-Executed": str(result.executed)}, body
        )
        # Replays of this entry did not execute anything, whatever the cold
        # request that populated it had to do — cache a zeroed header.
        self._render_cache[cache_key] = (
            Response(200, {**base_headers, "X-Repro-Executed": "0"}, body),
            etag,
        )
        while len(self._render_cache) > _RENDER_CACHE_SIZE:
            self._render_cache.popitem(last=False)
        return response

    def _list_runs(self, params: Dict[str, str]) -> Response:
        self.store.refresh()
        matches: Dict[str, Any] = {}
        for name in ("problem", "family", "scheduler"):
            if name in params:
                matches[name] = params[name]
        n_min = _int_param(params, "n_min", 0)
        n_max = _int_param(params, "n_max", -1)
        if "n_min" in params or "n_max" in params:
            matches["n_range"] = (n_min, n_max if n_max >= 0 else (1 << 62))
        if "ok" in params:
            matches["ok"] = params["ok"].lower() in ("1", "true", "yes")
        limit = _int_param(params, "limit", DEFAULT_PAGE_LIMIT)
        offset = _int_param(params, "offset", 0)
        if not 0 < limit <= MAX_PAGE_LIMIT:
            raise _HTTPError(400, f"limit must be in 1..{MAX_PAGE_LIMIT}, got {limit}")
        if offset < 0:
            raise _HTTPError(400, f"offset must be non-negative, got {offset}")
        # One extra record decides "more" without a full count of the match set.
        result = self.store.query(limit=limit + 1, offset=offset, **matches)
        page = result.records[:limit]
        return _json_response(
            {
                "runs": [_run_summary(record) for record in page],
                "count": len(page),
                "offset": offset,
                "limit": limit,
                "more": len(result.records) > limit,
            }
        )

    def _get_run(self, key: str) -> Response:
        self.store.refresh()
        record = self.store.get(key) if len(key) == 64 else None
        if record is None:
            hits = sorted(stored for stored in self.store.keys() if stored.startswith(key))
            if len(hits) > 1:
                raise _HTTPError(
                    400, f"key prefix {key!r} is ambiguous ({len(hits)} matches)"
                )
            record = self.store.get(hits[0]) if hits else None
        if record is None:
            raise _HTTPError(404, f"no stored record matches key {key!r}")
        payload = record.to_dict()
        payload["key"] = record.spec.key()
        return _json_response(payload)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def _need_jobs(self) -> SweepJobs:
        if self.jobs is None:
            raise _HTTPError(
                503, "no work queue configured; restart with repro serve --queue DIR"
            )
        return self.jobs

    def _submit_sweep(self, body: bytes) -> Response:
        jobs = self._need_jobs()
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HTTPError(400, f"request body is not JSON: {error}")
        if not isinstance(payload, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        unit_size = payload.pop("unit_size", None) if "sweep" in payload else None
        sweep_data = payload.get("sweep", payload)
        if not isinstance(sweep_data, dict):
            raise _HTTPError(400, "'sweep' must be a SweepSpec JSON object")
        try:
            sweep = SweepSpec.from_dict(sweep_data)
            job = jobs.submit(
                sweep, unit_size=None if unit_size is None else int(unit_size)
            )
        except (ReproError, TypeError, ValueError) as error:
            raise _HTTPError(400, f"undispatchable sweep: {error}")
        self.metrics["sweeps_dispatched"] += 1
        jid = job["job"]
        return _json_response(
            {
                "job": jid,
                "cells": job["cells"],
                "skipped_cached": job["skipped_cached"],
                "units": len(job["unit_ids"]),
                "status_url": f"/sweeps/{jid}/status",
                "progress_url": f"/sweeps/{jid}/progress",
            },
            status=202,
            headers={"Location": f"/sweeps/{jid}/status"},
        )

    def _sweep(self, action: str, jid: str) -> Response:
        jobs = self._need_jobs()
        try:
            if action == "status":
                return _json_response(jobs.status(jid))
            if action == "progress":
                return _json_response(jobs.progress(jid))
            report = jobs.cancel(jid)
        except QueueError as error:
            raise _HTTPError(404, str(error))
        self.metrics["sweeps_cancelled"] += 1
        return _json_response(report)


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """Socket adapter: parse, delegate to the service, write the response."""

    service: ResultService  # injected by make_server via a subclass attribute
    quiet = True
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - log formatting only
            super().log_message(format, *args)

    def _dispatch(self, method: str) -> None:
        parsed = urlsplit(self.path)
        params = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        response = self.service.handle(
            method, parsed.path, params=params, headers=dict(self.headers), body=body
        )
        self.send_response(response.status)
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        if response.body and response.status != 304:
            self.wfile.write(response.body)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")


def make_server(
    service: ResultService,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for ``service`` (``port=0`` picks a free
    one; read it back from ``server.server_address``).  The caller owns the
    serve_forever/shutdown lifecycle — and the store's, whose handle must
    outlive the server."""
    handler = type(
        "ReproRequestHandler", (_Handler,), {"service": service, "quiet": quiet}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server
