"""The HTTP result service: the store + experiments + queue fabric as an API.

A deliberately minimal serving tier — stdlib ``http.server`` only, one
:class:`ResultService` whose :meth:`~ResultService.handle` maps a parsed
request to a :class:`Response` without touching a socket (which is what the
tests drive), and a thin :class:`ThreadingHTTPServer` wrapper around it.

Read path
---------
``GET /experiments/<name>`` renders a registered experiment through the
same :func:`~repro.analysis.experiment_spec.aggregate_from_store` /
:func:`~repro.analysis.experiment_spec.run_experiment` pipeline as the CLI,
so the bytes served equal the bytes ``repro experiment`` prints.  Every
response carries an ETag built from the experiment's content hash
(:func:`~repro.analysis.experiment_spec.experiment_key`) and the store's
:meth:`~repro.store.base.ResultStore.generation` stamp: a repeat request
with ``If-None-Match`` is answered ``304 Not Modified`` from the two hashes
alone — no record reads, no aggregation, no rendering, and never an
execution.  Unconditional repeats hit a bounded rendered-bytes cache keyed
by the same ETag.  ``GET /runs`` pages the store's canonical-order query
layer; ``GET /runs/<key>`` fetches one record by (a unique prefix of) its
content address.

Write path
----------
``POST /sweeps`` dispatches a :class:`~repro.runtime.spec.SweepSpec` onto
the queue fabric and returns a content-keyed job id (see
:mod:`repro.serve.jobs`); ``GET /sweeps/<id>/status`` / ``…/progress``
observe the unit lease/done files; ``POST /sweeps/<id>/cancel`` tombstones
unclaimed units.  The service itself never executes sweep cells — workers
drain the queue, and a store merge makes their records servable.

Fleet observability
-------------------
``GET /events`` pages the queue's durable event journal
(:mod:`repro.obs.events`) in ``(ts, writer, seq)`` order, filterable by
``type`` / ``worker`` / ``unit`` / ``since`` and ETag'd on the journal
shards' change fingerprint — a quiet fleet answers conditional polls with
``304`` without reading a single event line.  ``GET /fleet`` summarises the
live fleet from the latest worker heartbeats (age, unit in flight,
progress, staleness against the lease TTL) plus queue totals, throughput
and an ETA — the JSON twin of ``repro top``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, NamedTuple, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..analysis.experiment_spec import (
    EXPERIMENTS,
    ExperimentSpec,
    aggregate_from_store,
    experiment_spec,
    run_experiment,
)
from ..analysis.render import FORMATS
from ..distrib.dispatcher import DEFAULT_UNIT_SIZE
from ..distrib.queue import WorkQueue
from ..distrib.worker import DEFAULT_LEASE_TTL
from ..exceptions import QueueError, ReproError
from ..obs.events import fleet_summary
from ..obs.metrics import MetricsRegistry
from ..runtime.records import RunRecord
from ..runtime.spec import SweepSpec
from ..store.base import ResultStore
from .jobs import SweepJobs

__all__ = ["Response", "ResultService", "make_server", "DEFAULT_PORT"]

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 8642

#: Rendered-bytes cache entries kept per service (FIFO eviction).
_RENDER_CACHE_SIZE = 128

#: MIME type per table format.
_CONTENT_TYPES = {
    "markdown": "text/markdown; charset=utf-8",
    "csv": "text/csv; charset=utf-8",
    "json": "application/json; charset=utf-8",
}

#: Most /runs a single page may return.
MAX_PAGE_LIMIT = 1000

#: Default /runs page size.
DEFAULT_PAGE_LIMIT = 50


class Response(NamedTuple):
    """One materialised HTTP response: status, extra headers, body bytes."""

    status: int
    headers: Dict[str, str]
    body: bytes


class _HTTPError(Exception):
    """Internal control flow: unwound into a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _json_response(
    payload: Any, status: int = 200, headers: Optional[Dict[str, str]] = None
) -> Response:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    merged = {"Content-Type": _CONTENT_TYPES["json"]}
    if headers:
        merged.update(headers)
    return Response(status, merged, body)


def _int_param(params: Dict[str, str], name: str, default: int) -> int:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise _HTTPError(400, f"query parameter {name!r} must be an integer, got {raw!r}")


def _run_summary(record: RunRecord) -> Dict[str, Any]:
    key = record.spec.key()
    return {
        "key": key,
        "problem": record.problem,
        "family": record.family,
        "n": record.graph_size,
        "seed": record.seed,
        "scheduler": record.scheduler,
        "ok": record.ok,
        "cost": record.cost,
        "url": f"/runs/{key}",
    }


class ResultService:
    """The routing/cache/metrics core of ``repro serve`` (socket-free).

    Parameters
    ----------
    store:
        The serving :class:`~repro.store.base.ResultStore`.  A
        :class:`~repro.store.filestore.FileStore` is refreshed before every
        read, so records appended by concurrent workers (or a ``store
        merge``) become servable without a restart.
    queue:
        Optional work-queue directory (or open
        :class:`~repro.distrib.queue.WorkQueue`) enabling the ``/sweeps``
        write path; without it those endpoints answer ``503``.
    unit_size:
        Default cells per dispatched work unit for ``POST /sweeps``.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        queue: Optional[Union[WorkQueue, str]] = None,
        unit_size: int = DEFAULT_UNIT_SIZE,
    ) -> None:
        self.store = store
        self.jobs = (
            None if queue is None else SweepJobs(queue, store=store, unit_size=unit_size)
        )
        self._lock = threading.RLock()
        self._render_cache: "OrderedDict[Tuple[str, str, str], Tuple[Response, str]]" = (
            OrderedDict()
        )
        # Per-instance registry: each service owns its counters (tests build
        # many fresh services; a process-global registry would smear them).
        self.registry = MetricsRegistry()
        self._requests = self.registry.counter(
            "serve_http_requests_total", "HTTP requests answered, by route"
        )
        self._request_seconds = self.registry.histogram(
            "serve_http_request_seconds", "Request handling wall time, by route"
        )
        self._errors = self.registry.counter(
            "serve_http_errors_total", "Requests answered with an error body"
        )
        self._etag_not_modified = self.registry.counter(
            "serve_etag_not_modified_total", "Conditional requests answered 304"
        )
        self._render_cache_ops = self.registry.counter(
            "serve_render_cache_total", "Rendered-bytes cache lookups, by outcome"
        )
        self._renders = self.registry.counter(
            "serve_renders_total", "Experiment tables rendered"
        )
        self._experiment_executions = self.registry.counter(
            "serve_experiment_executions_total", "Sweep cells executed by cold GETs"
        )
        self._sweeps = self.registry.counter(
            "serve_sweeps_total", "Sweep write-path operations, by action"
        )

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
        body: bytes = b"",
    ) -> Response:
        """Answer one request.  Thread-safe; never raises for request errors
        (they become JSON ``4xx``/``5xx`` bodies), so every handler thread
        of the HTTP server funnels through here without ceremony."""
        params = params or {}
        headers = {key.lower(): value for key, value in (headers or {}).items()}
        with self._lock:
            started = time.perf_counter()
            try:
                route, response = self._route(method, path, params, headers, body)
            except _HTTPError as error:
                route, response = "error", _json_response(
                    {"error": str(error)}, status=error.status
                )
                self._errors.inc()
            except ReproError as error:
                route, response = "error", _json_response(
                    {"error": str(error)}, status=400
                )
                self._errors.inc()
            # Counted after routing, so a served ``/metrics`` body reflects
            # every *prior* request per route — the historical semantics.
            self._requests.inc(route=route)
            self._request_seconds.observe(time.perf_counter() - started, route=route)
            return response

    def _route(
        self,
        method: str,
        path: str,
        params: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ) -> Tuple[str, Response]:
        parts = [part for part in path.split("/") if part]
        if not parts:
            return "index", self._index()
        head, rest = parts[0], parts[1:]
        if head == "healthz" and not rest:
            self._need(method, "GET")
            return "healthz", _json_response({"ok": True})
        if head == "metrics" and not rest:
            self._need(method, "GET")
            return "metrics", self._metrics(params)
        if head == "experiments":
            self._need(method, "GET")
            if not rest:
                return "experiments", self._list_experiments()
            if len(rest) == 1:
                return "experiment", self._get_experiment(rest[0], params, headers)
        if head == "runs":
            self._need(method, "GET")
            if not rest:
                return "runs", self._list_runs(params)
            if len(rest) == 1:
                return "run", self._get_run(rest[0])
        if head == "sweeps":
            if not rest:
                self._need(method, "POST")
                return "sweep_submit", self._submit_sweep(body)
            if len(rest) == 2 and rest[1] in ("status", "progress", "cancel"):
                self._need(method, "POST" if rest[1] == "cancel" else "GET")
                return f"sweep_{rest[1]}", self._sweep(rest[1], rest[0])
        if head == "events" and not rest:
            self._need(method, "GET")
            return "events", self._events(params, headers)
        if head == "fleet" and not rest:
            self._need(method, "GET")
            return "fleet", self._fleet()
        raise _HTTPError(404, f"no such endpoint: {method} {path}")

    @staticmethod
    def _need(method: str, expected: str) -> None:
        if method != expected:
            raise _HTTPError(405, f"method {method} not allowed (use {expected})")

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def _index(self) -> Response:
        return _json_response(
            {
                "service": "repro serve",
                "endpoints": {
                    "GET /healthz": "liveness probe",
                    "GET /metrics": (
                        "request / cache / execution counters "
                        "(?format=prom for Prometheus text format)"
                    ),
                    "GET /experiments": "registered experiments",
                    "GET /experiments/<name>?format=markdown|csv|json": (
                        "rendered experiment table (ETag: experiment key + store generation)"
                    ),
                    "GET /runs?problem=&family=&scheduler=&n_min=&n_max=&ok=&limit=&offset=": (
                        "stored run records, canonical order, paginated"
                    ),
                    "GET /runs/<spec_key>": "one stored record (unique prefixes allowed)",
                    "POST /sweeps": "dispatch a SweepSpec onto the work queue",
                    "GET /sweeps/<id>/status": "aggregate job state",
                    "GET /sweeps/<id>/progress": "per-unit lease/done detail",
                    "POST /sweeps/<id>/cancel": "tombstone the job's unclaimed units",
                    "GET /events?type=&worker=&unit=&since=&limit=&offset=": (
                        "the queue's durable event journal, paginated "
                        "(ETag: journal change fingerprint)"
                    ),
                    "GET /fleet": "live workers from heartbeats + queue totals",
                },
                "sweeps_enabled": self.jobs is not None,
            }
        )

    def _metrics(self, params: Optional[Dict[str, str]] = None) -> Response:
        """The metrics endpoint: legacy JSON by default, Prometheus on demand.

        ``?format=prom`` renders the per-service registry in the Prometheus
        text exposition format.  The JSON shape (and its counting semantics —
        ``requests_total`` includes the request being served, the per-route
        map does not) is unchanged from the pre-registry implementation.
        """
        format = (params or {}).get("format", "json")
        self.registry.gauge("serve_store_records", "Records in the serving store").set(
            len(self.store)
        )
        self.registry.gauge(
            "serve_render_cache_entries", "Rendered-bytes cache entries"
        ).set(len(self._render_cache))
        self.registry.gauge(
            "serve_sweeps_in_flight", "Dispatched sweep jobs not yet drained"
        ).set(0 if self.jobs is None else self.jobs.in_flight())
        if format == "prom":
            return Response(
                200,
                {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
                self.registry.render_prom().encode("utf-8"),
            )
        if format != "json":
            raise _HTTPError(400, f"unknown metrics format {format!r}: use json or prom")
        per_route = {
            dict(labels).get("route", ""): int(value)
            for labels, value in self._requests.samples()
        }
        payload = {
            # The in-flight request (this one) was counted at entry by the
            # dict implementation; the registry counts after routing, so the
            # served total adds it back.
            "requests_total": sum(per_route.values()) + 1,
            "requests": per_route,
            "errors": int(self._errors.value()),
            "etag_not_modified": int(self._etag_not_modified.value()),
            "render_cache_hits": int(self._render_cache_ops.value(outcome="hit")),
            "render_cache_misses": int(self._render_cache_ops.value(outcome="miss")),
            "renders": int(self._renders.value()),
            "experiment_executions": int(self._experiment_executions.value()),
            "sweeps_dispatched": int(self._sweeps.value(action="dispatched")),
            "sweeps_cancelled": int(self._sweeps.value(action="cancelled")),
            "store_records": len(self.store),
            "render_cache_entries": len(self._render_cache),
            "sweeps_in_flight": 0 if self.jobs is None else self.jobs.in_flight(),
        }
        return _json_response(payload)

    def _list_experiments(self) -> Response:
        experiments = []
        for name in EXPERIMENTS.names():
            spec = experiment_spec(name)
            experiments.append(
                {
                    "name": name,
                    "title": spec.title,
                    "cells": len(spec.cell_specs()),
                    "url": f"/experiments/{name}",
                }
            )
        return _json_response({"experiments": experiments})

    def _etag(self, spec: ExperimentSpec) -> str:
        return f'"{spec.key()}.{self.store.generation()}"'

    def _get_experiment(
        self, name: str, params: Dict[str, str], headers: Dict[str, str]
    ) -> Response:
        format = params.get("format", "markdown")
        if format not in FORMATS:
            raise _HTTPError(
                400, f"unknown format {format!r}; available: {sorted(FORMATS)}"
            )
        try:
            spec = experiment_spec(name)
        except ReproError as error:
            raise _HTTPError(404, str(error))
        self.store.refresh()
        etag = self._etag(spec)
        if_none_match = headers.get("if-none-match", "")
        if if_none_match and (etag in if_none_match or if_none_match.strip() == "*"):
            # The warm-hit fast path: two hashes decided nothing changed —
            # zero record reads, zero renders, zero executions.
            self._etag_not_modified.inc()
            return Response(304, {"ETag": etag}, b"")
        cache_key = (name, format, etag)
        cached = self._render_cache.get(cache_key)
        if cached is not None:
            self._render_cache_ops.inc(outcome="hit")
            self._render_cache.move_to_end(cache_key)
            return cached[0]
        self._render_cache_ops.inc(outcome="miss")
        try:
            result = aggregate_from_store(spec, self.store)
        except ReproError:
            # Cold: some cells are not stored yet.  Execute them through the
            # ordinary experiment pipeline (persisting as they complete),
            # then restamp the ETag — the store generation just moved.
            result = run_experiment(spec, store=self.store)
            self._experiment_executions.inc(result.executed)
            etag = self._etag(spec)
            cache_key = (name, format, etag)
        self._renders.inc()
        body = (result.render(format) + "\n").encode("utf-8")
        base_headers = {
            "Content-Type": _CONTENT_TYPES[format],
            "ETag": etag,
            "X-Repro-Cells": str(len(result.records)),
        }
        response = Response(
            200, {**base_headers, "X-Repro-Executed": str(result.executed)}, body
        )
        # Replays of this entry did not execute anything, whatever the cold
        # request that populated it had to do — cache a zeroed header.
        self._render_cache[cache_key] = (
            Response(200, {**base_headers, "X-Repro-Executed": "0"}, body),
            etag,
        )
        while len(self._render_cache) > _RENDER_CACHE_SIZE:
            self._render_cache.popitem(last=False)
        return response

    def _list_runs(self, params: Dict[str, str]) -> Response:
        self.store.refresh()
        matches: Dict[str, Any] = {}
        for name in ("problem", "family", "scheduler"):
            if name in params:
                matches[name] = params[name]
        n_min = _int_param(params, "n_min", 0)
        n_max = _int_param(params, "n_max", -1)
        if "n_min" in params or "n_max" in params:
            matches["n_range"] = (n_min, n_max if n_max >= 0 else (1 << 62))
        if "ok" in params:
            matches["ok"] = params["ok"].lower() in ("1", "true", "yes")
        limit = _int_param(params, "limit", DEFAULT_PAGE_LIMIT)
        offset = _int_param(params, "offset", 0)
        if not 0 < limit <= MAX_PAGE_LIMIT:
            raise _HTTPError(400, f"limit must be in 1..{MAX_PAGE_LIMIT}, got {limit}")
        if offset < 0:
            raise _HTTPError(400, f"offset must be non-negative, got {offset}")
        # One extra record decides "more" without a full count of the match set.
        result = self.store.query(limit=limit + 1, offset=offset, **matches)
        page = result.records[:limit]
        return _json_response(
            {
                "runs": [_run_summary(record) for record in page],
                "count": len(page),
                "offset": offset,
                "limit": limit,
                "more": len(result.records) > limit,
            }
        )

    def _get_run(self, key: str) -> Response:
        self.store.refresh()
        record = self.store.get(key) if len(key) == 64 else None
        if record is None:
            hits = sorted(stored for stored in self.store.keys() if stored.startswith(key))
            if len(hits) > 1:
                raise _HTTPError(
                    400, f"key prefix {key!r} is ambiguous ({len(hits)} matches)"
                )
            record = self.store.get(hits[0]) if hits else None
        if record is None:
            raise _HTTPError(404, f"no stored record matches key {key!r}")
        payload = record.to_dict()
        payload["key"] = record.spec.key()
        return _json_response(payload)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def _need_jobs(self) -> SweepJobs:
        if self.jobs is None:
            raise _HTTPError(
                503, "no work queue configured; restart with repro serve --queue DIR"
            )
        return self.jobs

    def _submit_sweep(self, body: bytes) -> Response:
        jobs = self._need_jobs()
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HTTPError(400, f"request body is not JSON: {error}")
        if not isinstance(payload, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        unit_size = payload.pop("unit_size", None) if "sweep" in payload else None
        sweep_data = payload.get("sweep", payload)
        if not isinstance(sweep_data, dict):
            raise _HTTPError(400, "'sweep' must be a SweepSpec JSON object")
        try:
            sweep = SweepSpec.from_dict(sweep_data)
            job = jobs.submit(
                sweep, unit_size=None if unit_size is None else int(unit_size)
            )
        except (ReproError, TypeError, ValueError) as error:
            raise _HTTPError(400, f"undispatchable sweep: {error}")
        self._sweeps.inc(action="dispatched")
        jid = job["job"]
        return _json_response(
            {
                "job": jid,
                "cells": job["cells"],
                "skipped_cached": job["skipped_cached"],
                "units": len(job["unit_ids"]),
                "status_url": f"/sweeps/{jid}/status",
                "progress_url": f"/sweeps/{jid}/progress",
            },
            status=202,
            headers={"Location": f"/sweeps/{jid}/status"},
        )

    def _sweep(self, action: str, jid: str) -> Response:
        jobs = self._need_jobs()
        try:
            if action == "status":
                return _json_response(jobs.status(jid))
            if action == "progress":
                return _json_response(jobs.progress(jid))
            report = jobs.cancel(jid)
        except QueueError as error:
            raise _HTTPError(404, str(error))
        self._sweeps.inc(action="cancelled")
        return _json_response(report)

    # ------------------------------------------------------------------
    # fleet observability
    # ------------------------------------------------------------------
    def _events(self, params: Dict[str, str], headers: Dict[str, str]) -> Response:
        """Page the journal; conditional polls are decided by one fingerprint."""
        journal = self._need_jobs().queue.journal()
        limit = _int_param(params, "limit", DEFAULT_PAGE_LIMIT)
        offset = _int_param(params, "offset", 0)
        if not 0 < limit <= MAX_PAGE_LIMIT:
            raise _HTTPError(400, f"limit must be in 1..{MAX_PAGE_LIMIT}, got {limit}")
        if offset < 0:
            raise _HTTPError(400, f"offset must be non-negative, got {offset}")
        since: Optional[float] = None
        if "since" in params:
            try:
                since = float(params["since"])
            except ValueError:
                raise _HTTPError(
                    400,
                    f"query parameter 'since' must be a timestamp, got {params['since']!r}",
                )
        etag = f'"events.{journal.generation()}"'
        if_none_match = headers.get("if-none-match", "")
        if if_none_match and (etag in if_none_match or if_none_match.strip() == "*"):
            self._etag_not_modified.inc()
            return Response(304, {"ETag": etag}, b"")
        events = journal.events(
            type=params.get("type"),
            worker=params.get("worker"),
            unit=params.get("unit"),
            since=since,
        )
        page = events[offset : offset + limit]
        return _json_response(
            {
                "events": page,
                "count": len(page),
                "total": len(events),
                "offset": offset,
                "limit": limit,
                "more": offset + limit < len(events),
                "dropped": journal.dropped,
            },
            headers={"ETag": etag},
        )

    def _fleet(self) -> Response:
        """The live fleet: ``repro top``'s JSON twin."""
        queue = self._need_jobs().queue
        journal = queue.journal()
        summary = fleet_summary(
            queue.status(),
            journal.latest_heartbeats(),
            events=journal.events(),
            lease_ttl=DEFAULT_LEASE_TTL,
        )
        return _json_response(summary)


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """Socket adapter: parse, delegate to the service, write the response."""

    service: ResultService  # injected by make_server via a subclass attribute
    quiet = True
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - log formatting only
            super().log_message(format, *args)

    def _dispatch(self, method: str) -> None:
        parsed = urlsplit(self.path)
        params = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        response = self.service.handle(
            method, parsed.path, params=params, headers=dict(self.headers), body=body
        )
        self.send_response(response.status)
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        if response.body and response.status != 304:
            self.wfile.write(response.body)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")


def make_server(
    service: ResultService,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for ``service`` (``port=0`` picks a free
    one; read it back from ``server.server_address``).  The caller owns the
    serve_forever/shutdown lifecycle — and the store's, whose handle must
    outlive the server."""
    handler = type(
        "ReproRequestHandler", (_Handler,), {"service": service, "quiet": quiet}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server
