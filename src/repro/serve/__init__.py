"""``repro serve``: the HTTP result service.

Public API
----------
* :class:`~repro.serve.app.ResultService` — socket-free request core
  (routing, ETag/304, render cache, metrics)
* :func:`~repro.serve.app.make_server` — bind a ``ThreadingHTTPServer``
* :class:`~repro.serve.jobs.SweepJobs` / :func:`~repro.serve.jobs.job_id`
  — the ``POST /sweeps`` lifecycle over the queue fabric
"""

from .app import DEFAULT_PORT, Response, ResultService, make_server
from .jobs import SweepJobs, job_id

__all__ = [
    "DEFAULT_PORT",
    "Response",
    "ResultService",
    "make_server",
    "SweepJobs",
    "job_id",
]
