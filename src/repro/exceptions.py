"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class RegistryError(ReproError):
    """A runtime registry lookup or registration failed (unknown/duplicate name)."""


class GraphError(ReproError):
    """A port-labeled graph is malformed or an operation on it is invalid."""


class InvalidPortError(GraphError):
    """A port number outside ``{0, ..., deg(v) - 1}`` was used at a node."""


class LabelError(ReproError):
    """An agent label is invalid (labels must be strictly positive integers)."""


class SimulationError(ReproError):
    """The asynchronous execution engine reached an inconsistent state."""


class SchedulerError(SimulationError):
    """An adversarial scheduler produced an illegal decision."""


class CostLimitExceeded(SimulationError):
    """A simulation exceeded its configured cost (edge-traversal) budget.

    The exception carries the partial result so callers can inspect how far
    the run progressed before the budget ran out.
    """

    def __init__(self, message: str, partial_result=None):
        super().__init__(message)
        self.partial_result = partial_result


class StoreError(ReproError):
    """A result store operation failed (missing store, format mismatch, ...)."""


class StoreCorruptionError(StoreError):
    """A result-store shard holds data that cannot be decoded.

    A truncated *final* line (the in-flight cell of a killed sweep) is
    tolerated and dropped; anything else malformed raises this error so that
    silent data loss never masquerades as a cache miss.
    """


class StoreConflictError(StoreError):
    """Two stores hold *divergent* records under the same spec key.

    Raised by :func:`repro.store.merge.merge_stores`: identical payloads are
    deduplicated silently, but a key whose stored records differ means two
    writers computed different results for the same content-addressed cell —
    a determinism violation that must never be papered over by a merge.
    The ``conflicts`` attribute lists the offending keys.
    """

    def __init__(self, message: str, conflicts=()):
        super().__init__(message)
        self.conflicts = tuple(conflicts)


class QueueError(ReproError):
    """A distributed work-queue operation failed (layout, claim, drain)."""


class ExplorationError(ReproError):
    """An exploration procedure (UXS walk, ESST) failed or was misused."""


class ProtocolError(ReproError):
    """An agent program violated the engine's action protocol."""
