"""Partitioning a sweep into leaseable, content-keyed work units."""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional, Union

from ..exceptions import ReproError
from ..runtime.spec import ScenarioSpec, SweepSpec
from .queue import WorkQueue

__all__ = ["Dispatcher", "DEFAULT_UNIT_SIZE"]

#: Cells per work unit.  Small units spread load and bound the work a killed
#: lease re-exposes; large units amortise claim traffic.  Sweep cells here
#: run in milliseconds-to-seconds, so a handful per lease is the sweet spot.
DEFAULT_UNIT_SIZE = 4


class Dispatcher:
    """Splits a sweep's cells into work units on a :class:`WorkQueue`.

    The dispatcher is the *only* writer of unit files; workers only read
    them.  Because unit ids are content keys, dispatching is idempotent —
    re-issuing the same sweep (e.g. after a coordinator crash) recreates no
    work, and dispatching a *grown* sweep only queues the new cells' units.
    """

    def __init__(
        self,
        queue: Union[WorkQueue, str],
        *,
        unit_size: int = DEFAULT_UNIT_SIZE,
        journal: bool = True,
    ) -> None:
        if unit_size < 1:
            raise ValueError(f"unit_size must be positive, got {unit_size}")
        self.queue = queue if isinstance(queue, WorkQueue) else WorkQueue(queue, create=True)
        self.unit_size = unit_size
        self.journal = journal

    def dispatch(
        self,
        sweep: Union[SweepSpec, Iterable[ScenarioSpec]],
        *,
        store: Optional[Any] = None,
    ) -> Dict[str, int]:
        """Enumerate ``sweep``'s cells, chunk them, write the unit files.

        Cells whose key ``store`` already holds are skipped entirely — the
        distributed analogue of ``run_sweep(..., resume=True)``: the fleet
        only ever computes what the store is missing.  Returns counters plus
        the ids of this sweep's units (a queue directory may accumulate
        units of several sweeps; callers waiting on *this* dispatch must
        watch exactly these)::

            {"cells": ..., "skipped_cached": ..., "units": ...,
             "new_units": ..., "existing_units": ..., "unit_ids": [...]}
        """
        specs = list(sweep.cells()) if isinstance(sweep, SweepSpec) else list(sweep)
        for spec in specs:
            spec.validate()
        pending: List[ScenarioSpec] = []
        skipped = 0
        for spec in specs:
            if store is not None and store.get(spec.key()) is not None:
                skipped += 1
            else:
                pending.append(spec)
        new_units = existing_units = 0
        unit_ids: List[str] = []
        for start in range(0, len(pending), self.unit_size):
            uid, created = self.queue.add_unit(pending[start : start + self.unit_size])
            unit_ids.append(uid)
            if created:
                new_units += 1
            else:
                existing_units += 1
        report = {
            "cells": len(specs),
            "skipped_cached": skipped,
            "units": new_units + existing_units,
            "new_units": new_units,
            "existing_units": existing_units,
            "unit_ids": unit_ids,
        }
        if self.journal:
            try:
                # Respect an already attached writer (e.g. the serve tier's);
                # a bare dispatch attaches under its own pid-scoped name.
                journal = self.queue.attached_journal or self.queue.attach_journal(
                    f"dispatch-{os.getpid()}"
                )
                journal.append(
                    "sweep.dispatch",
                    **{k: v for k, v in report.items() if k != "unit_ids"},
                )
            except (ReproError, OSError):
                pass  # journalling never blocks a dispatch
        return report
