"""The work-queue directory: units, claims, done markers, worker shards.

Layout of a queue directory::

    queue/
    ├── queue.meta.json        # format + spec-key versions
    ├── units/<id>.json        # one work unit: its cells and their keys
    ├── claims/<id>.json       # lease: {"worker", "created", "expires"}
    ├── done/<id>.json         # completion: keys + executed/salvaged counts
    ├── results/<worker>/      # one FileStore per worker (its "shard")
    ├── logs/<worker>.log      # stdout/stderr of executor-spawned workers
    ├── journal/               # durable event journal (repro.obs.events)
    └── .steal.lock            # advisory flock serialising lease steals

Unit ids are **content keys**: the sha256 of the ordered cell-key list.  Two
dispatches of the same sweep therefore produce the same unit files, making
dispatch idempotent, and a unit id names *what is to be computed* rather
than when or by whom.

The claim protocol needs nothing beyond POSIX file semantics:

* a **fresh claim** is an ``O_CREAT | O_EXCL`` create of the claim file —
  atomic, exactly one winner;
* an **expired claim** (the lease of a killed worker) is *stolen* by
  unlinking it under the advisory steal lock and then racing the ordinary
  ``O_EXCL`` create; the lock makes expiry-check-and-unlink atomic against
  other stealers, while a concurrent fresh claimant can still slip in —
  either way exactly one process ends up owning the new claim file;
* a **done marker** is written via temp-file + ``os.replace`` before the
  claim is released, so "done" is never observed half-written and a unit
  whose worker died after finishing is salvaged, not re-run.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

try:  # pragma: no cover - fcntl is present on every POSIX platform we run on
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from ..exceptions import QueueError
from ..obs.events import JOURNAL_DIR_NAME, EventJournal
from ..obs.metrics import get_registry
from ..runtime.spec import SPEC_KEY_VERSION, ScenarioSpec, canonical_json

__all__ = ["WorkQueue", "WorkUnit", "unit_id", "QUEUE_FORMAT_VERSION"]

#: On-disk queue layout version.
QUEUE_FORMAT_VERSION = 1

_META_NAME = "queue.meta.json"
_UNITS_DIR = "units"
_CLAIMS_DIR = "claims"
_DONE_DIR = "done"
_RESULTS_DIR = "results"
_LOGS_DIR = "logs"
_STEAL_LOCK = ".steal.lock"


def unit_id(keys: Sequence[str]) -> str:
    """Content key of a work unit: sha256 over its ordered cell keys."""
    payload = f"repro.WorkUnit.v{QUEUE_FORMAT_VERSION}:{canonical_json(list(keys))}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    tmp = path.with_suffix(path.suffix + f".tmp-{os.getpid()}")
    tmp.write_text(
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    """Read a small JSON file; ``None`` when missing or (transiently) invalid."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


@dataclass(frozen=True)
class WorkUnit:
    """One leaseable batch of sweep cells."""

    unit: str
    specs: Tuple[ScenarioSpec, ...]
    keys: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.specs)


class WorkQueue:
    """Handle on a queue directory (see the module docstring for layout)."""

    def __init__(self, root, *, create: bool = False) -> None:
        self.root = Path(root)
        self._journal: Optional[EventJournal] = None
        meta = _read_json(self._meta_path)
        if meta is not None:
            if meta.get("format_version") != QUEUE_FORMAT_VERSION:
                raise QueueError(
                    f"queue {self.root} uses layout version "
                    f"{meta.get('format_version')}, this code reads "
                    f"version {QUEUE_FORMAT_VERSION}"
                )
            if meta.get("spec_key_version") != SPEC_KEY_VERSION:
                raise QueueError(
                    f"queue {self.root} was dispatched with spec-key version "
                    f"{meta.get('spec_key_version')} (current: {SPEC_KEY_VERSION}); "
                    "re-dispatch the sweep into a fresh queue"
                )
        elif create:
            for sub in (_UNITS_DIR, _CLAIMS_DIR, _DONE_DIR, _RESULTS_DIR, _LOGS_DIR):
                (self.root / sub).mkdir(parents=True, exist_ok=True)
            _atomic_write_json(
                self._meta_path,
                {
                    "format_version": QUEUE_FORMAT_VERSION,
                    "spec_key_version": SPEC_KEY_VERSION,
                },
            )
        elif self.root.exists():
            raise QueueError(
                f"{self.root} holds no queue metadata — not a work queue "
                "(dispatch into it first)"
            )
        else:
            raise QueueError(f"no work queue at {self.root}")
        for sub in (_UNITS_DIR, _CLAIMS_DIR, _DONE_DIR, _RESULTS_DIR, _LOGS_DIR):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def _meta_path(self) -> Path:
        return self.root / _META_NAME

    def unit_path(self, uid: str) -> Path:
        return self.root / _UNITS_DIR / f"{uid}.json"

    def claim_path(self, uid: str) -> Path:
        return self.root / _CLAIMS_DIR / f"{uid}.json"

    def done_path(self, uid: str) -> Path:
        return self.root / _DONE_DIR / f"{uid}.json"

    @property
    def results_root(self) -> Path:
        return self.root / _RESULTS_DIR

    @property
    def logs_root(self) -> Path:
        return self.root / _LOGS_DIR

    def result_store_dirs(self) -> List[Path]:
        """Every worker shard directory currently present, sorted by name."""
        if not self.results_root.exists():
            return []
        return sorted(path for path in self.results_root.iterdir() if path.is_dir())

    # ------------------------------------------------------------------
    # event journal
    # ------------------------------------------------------------------
    @property
    def journal_root(self) -> Path:
        return self.root / JOURNAL_DIR_NAME

    def journal(self) -> EventJournal:
        """A read-only view of this queue's event journal."""
        return EventJournal(self.journal_root)

    @property
    def attached_journal(self) -> Optional[EventJournal]:
        """The writing journal attached to this handle, if any."""
        return self._journal

    def attach_journal(self, writer: str) -> EventJournal:
        """Attach a writing journal: queue operations now emit fleet events.

        Each process attaches under its own ``writer`` name (worker id,
        ``dispatch-<pid>``, ``serve-<pid>``) so concurrent emitters never
        share a shard.  Unattached queues emit nothing — journalling is
        opt-in per handle, exactly like metrics.
        """
        if self._journal is None or self._journal.writer != writer:
            if self._journal is not None:
                self._journal.close()
            self._journal = EventJournal(self.journal_root, writer=writer, create=True)
        return self._journal

    def _emit(self, type: str, **fields: Any) -> None:
        """Best-effort event append: the journal never wedges the fleet."""
        if self._journal is None:
            return
        with contextlib.suppress(OSError):
            self._journal.append(type, **fields)

    # ------------------------------------------------------------------
    # units
    # ------------------------------------------------------------------
    def add_unit(self, specs: Sequence[ScenarioSpec]) -> Tuple[str, bool]:
        """Write the unit file for ``specs``; returns ``(unit_id, created)``.

        Content-keyed ids make this idempotent: re-dispatching an already
        queued unit is a no-op (``created=False``), even mid-execution.
        """
        keys = [spec.key() for spec in specs]
        uid = unit_id(keys)
        path = self.unit_path(uid)
        if path.exists():
            return uid, False
        _atomic_write_json(
            path,
            {
                "unit": uid,
                "keys": keys,
                "cells": [spec.to_dict() for spec in specs],
            },
        )
        return uid, True

    def units(self) -> List[str]:
        """All queued unit ids, sorted (the shared iteration order)."""
        return sorted(path.stem for path in (self.root / _UNITS_DIR).glob("*.json"))

    def load_unit(self, uid: str) -> WorkUnit:
        data = _read_json(self.unit_path(uid))
        if data is None or "cells" not in data or "keys" not in data:
            raise QueueError(f"unreadable work unit {uid} in {self.root}")
        specs = tuple(ScenarioSpec.from_dict(cell) for cell in data["cells"])
        keys = tuple(data["keys"])
        if tuple(spec.key() for spec in specs) != keys:
            raise QueueError(
                f"work unit {uid} cells do not hash to their recorded keys "
                "(content-key mismatch)"
            )
        if unit_id(keys) != uid:
            raise QueueError(f"work unit file {uid} does not hash to its id")
        return WorkUnit(unit=uid, specs=specs, keys=keys)

    # ------------------------------------------------------------------
    # done markers
    # ------------------------------------------------------------------
    def is_done(self, uid: str) -> bool:
        return self.done_path(uid).exists()

    def read_done(self, uid: str) -> Optional[Dict[str, Any]]:
        return _read_json(self.done_path(uid))

    def write_done(self, uid: str, payload: Dict[str, Any]) -> None:
        _atomic_write_json(self.done_path(uid), payload)
        self._emit(
            "unit.cancelled" if payload.get("cancelled") else "unit.done",
            unit=uid,
            worker=payload.get("worker"),
            **{
                counter: int(payload.get(counter, 0))
                for counter in ("total", "executed", "salvaged", "cached", "steals")
            },
        )

    # ------------------------------------------------------------------
    # claims / leases
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _steal_lock(self) -> Iterator[None]:
        if fcntl is None:  # pragma: no cover
            yield
            return
        with (self.root / _STEAL_LOCK).open("a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def read_claim(self, uid: str) -> Optional[Dict[str, Any]]:
        return _read_json(self.claim_path(uid))

    def _create_claim(
        self,
        uid: str,
        worker: str,
        ttl: float,
        now: float,
        steals: int = 0,
        stolen_from: Optional[str] = None,
    ) -> bool:
        claim: Dict[str, Any] = {
            "unit": uid,
            "worker": worker,
            "created": now,
            "expires": now + ttl,
            "steals": steals,
        }
        if stolen_from is not None:
            claim["stolen_from"] = stolen_from
        payload = json.dumps(claim, sort_keys=True, separators=(",", ":"))
        try:
            descriptor = os.open(
                self.claim_path(uid), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        return True

    def try_claim(
        self, uid: str, worker: str, ttl: float, now: Optional[float] = None
    ) -> bool:
        """Attempt to lease unit ``uid`` for ``worker``; non-blocking.

        Succeeds when the unit is unclaimed, when the existing lease has
        expired (a killed worker — the claim is stolen), or when the lease
        already belongs to ``worker`` (a restarted worker reclaims its own
        units without waiting out its previous life's lease; worker ids must
        therefore name at most one live process).

        Claim files carry steal provenance: ``steals`` counts how many times
        this unit's lease has been taken from an expired holder, and
        ``stolen_from`` names the most recent victim.  The winner of a steal
        carries both forward, and workers copy ``steals`` into their done
        markers, so :meth:`status` can total steals from the files alone.
        """
        now = time.time() if now is None else now
        claims_total = get_registry().counter(
            "repro_queue_claims_total", "Unit leases taken, by kind"
        )
        if self._create_claim(uid, worker, ttl, now):
            claims_total.inc(kind="fresh")
            self._emit("unit.claim", unit=uid, worker=worker, kind="fresh", ts=now)
            return True
        claim = self.read_claim(uid)
        if claim is None:
            # Mid-steal by someone else, or vanished: race the fresh create.
            if self._create_claim(uid, worker, ttl, now):
                claims_total.inc(kind="fresh")
                self._emit("unit.claim", unit=uid, worker=worker, kind="fresh", ts=now)
                return True
            return False
        if claim.get("worker") == worker:
            _atomic_write_json(
                self.claim_path(uid),
                {
                    "unit": uid,
                    "worker": worker,
                    "created": now,
                    "expires": now + ttl,
                    "steals": int(claim.get("steals", 0)),
                    **(
                        {"stolen_from": claim["stolen_from"]}
                        if claim.get("stolen_from")
                        else {}
                    ),
                },
            )
            claims_total.inc(kind="reclaim")
            self._emit("unit.claim", unit=uid, worker=worker, kind="reclaim", ts=now)
            return True
        if float(claim.get("expires", 0.0)) > now:
            return False
        victim: Optional[str] = None
        prior_steals = 0
        with self._steal_lock():
            claim = self.read_claim(uid)
            if claim is not None:
                if (
                    claim.get("worker") != worker
                    and float(claim.get("expires", 0.0)) > now
                ):
                    return False  # renewed while we waited for the lock
                victim = claim.get("worker")
                prior_steals = int(claim.get("steals", 0))
                with contextlib.suppress(FileNotFoundError):
                    os.unlink(self.claim_path(uid))
        if self._create_claim(
            uid, worker, ttl, now, steals=prior_steals + 1, stolen_from=victim
        ):
            registry = get_registry()
            claims_total.inc(kind="steal")
            registry.counter(
                "repro_queue_lease_expiries_total",
                "Expired leases observed (and stolen) at claim time",
            ).inc()
            self._emit("lease.expire", unit=uid, worker=victim, ts=now)
            self._emit(
                "unit.claim",
                unit=uid,
                worker=worker,
                kind="steal",
                stolen_from=victim,
                ts=now,
            )
            return True
        return False

    def renew_claim(
        self, uid: str, worker: str, ttl: float, now: Optional[float] = None
    ) -> bool:
        """Extend ``worker``'s live lease on ``uid``; the heartbeat's twin.

        Only the current holder renews — anyone else (including the holder
        after its lease was stolen) gets ``False`` and must re-claim.  The
        rewrite preserves the steal provenance, so renewal never launders a
        stolen unit's history.  This is what lets a unit longer than the
        lease TTL finish instead of being stolen while alive (ROADMAP
        item 4's long-unit half): the worker renews on every heartbeat.
        """
        now = time.time() if now is None else now
        claim = self.read_claim(uid)
        if claim is None or claim.get("worker") != worker:
            return False
        _atomic_write_json(
            self.claim_path(uid),
            {
                "unit": uid,
                "worker": worker,
                "created": float(claim.get("created", now)),
                "expires": now + ttl,
                "steals": int(claim.get("steals", 0)),
                **(
                    {"stolen_from": claim["stolen_from"]}
                    if claim.get("stolen_from")
                    else {}
                ),
            },
        )
        get_registry().counter(
            "repro_queue_lease_renewals_total", "Live leases extended mid-unit"
        ).inc()
        self._emit("lease.renew", unit=uid, worker=worker, expires=now + ttl, ts=now)
        return True

    def release_claim(self, uid: str, worker: str) -> None:
        """Drop ``worker``'s lease on ``uid`` (no-op when not the holder)."""
        claim = self.read_claim(uid)
        if claim is not None and claim.get("worker") == worker:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.claim_path(uid))

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel_unit(self, uid: str, now: Optional[float] = None) -> str:
        """Tombstone unit ``uid`` so no worker will ever execute it.

        Cancellation goes through the ordinary claim protocol — take the
        lease, write a done marker flagged ``"cancelled"``, release — so it
        can never race a worker: whoever wins the claim decides the unit's
        fate.  An *actively leased* unit is left alone (its worker finishes
        it; killing in-flight work would waste the computation).  Returns
        what happened: ``"cancelled"``, ``"already_done"``,
        ``"already_cancelled"`` or ``"claimed"``.
        """
        now = time.time() if now is None else now
        done = self.read_done(uid)
        if done is not None:
            return "already_cancelled" if done.get("cancelled") else "already_done"
        canceller = f"cancel-{os.getpid()}"
        if not self.try_claim(uid, canceller, ttl=60.0, now=now):
            return "claimed"
        try:
            done = self.read_done(uid)
            if done is not None:  # finished while we claimed
                return "already_cancelled" if done.get("cancelled") else "already_done"
            data = _read_json(self.unit_path(uid)) or {}
            keys = list(data.get("keys", ()))
            claim = self.read_claim(uid) or {}
            self.write_done(
                uid,
                {
                    "unit": uid,
                    "worker": canceller,
                    "cancelled": True,
                    "keys": keys,
                    "total": len(keys),
                    "cached": 0,
                    "salvaged": 0,
                    "executed": 0,
                    "steals": int(claim.get("steals", 0)),
                },
            )
            return "cancelled"
        finally:
            self.release_claim(uid, canceller)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def unit_states(
        self, uids: Optional[Sequence[str]] = None, now: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Per-unit lifecycle snapshots, in unit-id order.

        Each entry reports the unit's id, its cell count and its ``state``
        (``pending`` / ``claimed`` / ``done`` / ``cancelled``), plus the
        lease holder and remaining lease seconds while claimed and the done
        marker's execution counters once finished.  This is the live-progress
        introspection behind ``GET /sweeps/<id>/progress``.
        """
        now = time.time() if now is None else now
        states: List[Dict[str, Any]] = []
        for uid in self.units() if uids is None else uids:
            data = _read_json(self.unit_path(uid))
            entry: Dict[str, Any] = {
                "unit": uid,
                "cells": len(data.get("keys", ())) if data else 0,
            }
            done = self.read_done(uid)
            if done is not None:
                entry["state"] = "cancelled" if done.get("cancelled") else "done"
                entry["worker"] = done.get("worker")
                for counter in ("executed", "salvaged", "cached"):
                    entry[counter] = int(done.get(counter, 0))
                if int(done.get("steals", 0)):
                    entry["steals"] = int(done["steals"])
            else:
                claim = self.read_claim(uid)
                expires = float(claim.get("expires", 0.0)) if claim else 0.0
                if claim is not None and expires > now:
                    entry["state"] = "claimed"
                    entry["worker"] = claim.get("worker")
                    entry["lease_remaining"] = round(expires - now, 3)
                    if int(claim.get("steals", 0)):
                        entry["steals"] = int(claim["steals"])
                else:
                    entry["state"] = "pending"
                    if claim is not None:
                        entry["lease_expired"] = True
            states.append(entry)
        return states

    def status(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Aggregate queue state: unit/cell counts and execution totals.

        ``executed`` sums the done markers' execution counts — over a full
        drain it equals the number of cells that were actually computed, so
        ``executed == cells`` certifies a duplicate-free distributed run.

        ``steals`` totals the lease-steal provenance salvaged from the claim
        and done files (see :meth:`try_claim`), and ``expired`` counts units
        whose claim file has outlived its lease without being stolen yet —
        together the post-hoc evidence of worker deaths during the run.
        """
        now = time.time() if now is None else now
        uids = self.units()
        cells = 0
        done_units = cancelled_units = 0
        executed = salvaged = cached = 0
        claimed_active = 0
        pending = 0
        steals = 0
        expired = 0
        for uid in uids:
            data = _read_json(self.unit_path(uid))
            cells += len(data.get("keys", ())) if data else 0
            done = self.read_done(uid)
            if done is not None:
                steals += int(done.get("steals", 0))
                if done.get("cancelled"):
                    cancelled_units += 1
                    continue
                done_units += 1
                executed += int(done.get("executed", 0))
                salvaged += int(done.get("salvaged", 0))
                cached += int(done.get("cached", 0))
                continue
            claim = self.read_claim(uid)
            if claim is not None:
                steals += int(claim.get("steals", 0))
            if claim is not None and float(claim.get("expires", 0.0)) > now:
                claimed_active += 1
            else:
                pending += 1
                if claim is not None:
                    expired += 1
        return {
            "units": len(uids),
            "cells": cells,
            "done": done_units,
            "cancelled": cancelled_units,
            "claimed": claimed_active,
            "pending": pending,
            "executed": executed,
            "salvaged": salvaged,
            "cached": cached,
            "steals": steals,
            "expired": expired,
            "workers": len(self.result_store_dirs()),
        }
