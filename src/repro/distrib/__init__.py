"""Distributed sweep fabric: a file-based work queue over the result store.

The single-machine ceiling of the process-pool executor is lifted by
splitting a sweep into **content-keyed work units** on a shared (or shipped)
queue directory and letting any number of worker processes — on any number
of machines that can see the directory — lease and execute them:

* :class:`~repro.distrib.dispatcher.Dispatcher` partitions a
  :class:`~repro.runtime.spec.SweepSpec`'s cells into work units, skipping
  cells a result store already holds;
* :class:`~repro.distrib.worker.Worker` (CLI: ``repro worker --queue DIR``)
  leases units via atomic claim files, executes them through the ordinary
  :func:`~repro.runtime.executors.run_sweep` machinery and persists records
  into its own shard store — so a killed worker loses at most its in-flight
  cell, its lease expires, and the next claimant *salvages* the partial
  shard instead of re-executing;
* :func:`~repro.store.merge.merge_stores` (CLI: ``repro store merge``)
  folds the shipped worker shards into one destination store, deduplicating
  by spec key and refusing divergent payloads;
* :class:`~repro.distrib.executor.QueueExecutor` wraps the whole lifecycle
  behind the standard :class:`~repro.runtime.executors.Executor` interface,
  so ``run_sweep(..., executor=make_executor(4, kind="queue"))`` — and hence
  ``run_experiment`` and the CLI — can fan a sweep out over local worker
  processes without any manual dispatch.

Everything is plain files and atomic renames: no daemon, no broker, no
network protocol — coordination happens only through shared state, and a
restarted fleet converges to the exact record set a serial run produces.

Observability: every fabric participant additionally emits structured
events into the queue's durable journal (``<queue>/journal``, see
:mod:`repro.obs.events`) — unit claims and steals, per-cell completions,
worker heartbeats that double as mid-unit lease renewals — so a sweep's
timeline is reconstructible after the fact (``repro tail``,
``GET /events``) and watchable while it runs (``repro top``,
``GET /fleet``).
"""

from __future__ import annotations

from .dispatcher import Dispatcher
from .executor import QueueExecutor
from .queue import WorkQueue, WorkUnit, unit_id
from .worker import DEFAULT_HEARTBEAT_CAP, DEFAULT_LEASE_TTL, Worker

__all__ = [
    "Dispatcher",
    "QueueExecutor",
    "WorkQueue",
    "WorkUnit",
    "Worker",
    "unit_id",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_HEARTBEAT_CAP",
]
