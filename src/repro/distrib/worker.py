"""The worker loop: lease a unit, execute it, persist into an own shard.

A worker is identified by a ``worker_id`` naming at most one live process.
Its result store — "its shard" — lives at ``<queue>/results/<worker_id>/``
(or under an explicit ``--store`` root), so concurrent workers never share
an append target and a whole worker directory can be shipped as one unit of
exchange.

Crash safety: records are persisted per cell (``run_sweep`` with a store),
the done marker is written atomically *before* the lease is released, and a
claimant of an expired lease first **salvages** — it looks every cell key of
the unit up in all sibling shards (including a dead worker's partial one)
and only executes the cells nobody persisted.  A restarted fleet therefore
converges to exactly the serial record set with every cell executed once.
"""

from __future__ import annotations

import contextlib
import os
import socket
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from ..exceptions import ReproError, StoreError
from ..obs.events import EventJournal
from ..obs.metrics import get_registry
from ..runtime.executors import SerialExecutor, run_sweep
from ..runtime.records import RunRecord
from ..store.filestore import FileStore
from .queue import WorkQueue, WorkUnit

__all__ = ["Worker", "DEFAULT_LEASE_TTL", "DEFAULT_HEARTBEAT_CAP"]

#: Default lease duration.  Historically a unit longer than this was simply
#: stolen; with heartbeat-driven renewal (see :meth:`Worker._heartbeat`) the
#: TTL now only bounds how long a *dead* worker's lease lingers.
DEFAULT_LEASE_TTL = 300.0

#: Upper bound on the derived heartbeat interval: a worker beats at least
#: this often even under huge lease TTLs, so fleet views stay fresh.
DEFAULT_HEARTBEAT_CAP = 15.0


def default_worker_id() -> str:
    """``<host>-<pid>``: unique per live process, stable within it."""
    host = socket.gethostname().split(".", 1)[0] or "worker"
    return f"{host}-{os.getpid()}"


class Worker:
    """Drains a :class:`WorkQueue` until every unit has a done marker.

    Parameters
    ----------
    queue:
        The queue directory (or an open :class:`WorkQueue`).
    worker_id:
        This worker's identity; defaults to ``<host>-<pid>``.  Re-using an
        id across *sequential* lives is encouraged (a restart reclaims its
        own leases immediately); sharing one between live processes is not.
    results_root:
        Where worker shards live.  Defaults to ``<queue>/results``; the
        worker's own store is ``<results_root>/<worker_id>/``.
    lease_ttl, poll:
        Lease duration, and the sleep between scans while other workers
        hold the remaining units.
    max_units:
        Stop after processing this many units (``None`` = drain fully).
    progress:
        Optional ``progress(unit_id, counts)`` callback per finished unit.
    heartbeat_interval:
        Seconds between heartbeats (journal event + latest-heartbeat file +
        **lease renewal** of the unit in flight).  Defaults to a third of
        the lease TTL, capped at :data:`DEFAULT_HEARTBEAT_CAP` — three
        missed beats before the lease becomes stealable.
    journal:
        Emit fleet events into ``<queue>/journal``.  On by default; turn
        off to measure or run journal-free (heartbeat-driven lease renewal
        still happens — liveness is not an observability option).
    """

    def __init__(
        self,
        queue: Union[WorkQueue, str, Path],
        *,
        worker_id: Optional[str] = None,
        results_root: Optional[Union[str, Path]] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll: float = 0.5,
        max_units: Optional[int] = None,
        progress: Optional[Callable[[str, Dict[str, int]], None]] = None,
        heartbeat_interval: Optional[float] = None,
        journal: bool = True,
    ) -> None:
        self.queue = queue if isinstance(queue, WorkQueue) else WorkQueue(queue)
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.results_root = (
            Path(results_root) if results_root is not None else self.queue.results_root
        )
        self.lease_ttl = lease_ttl
        self.poll = poll
        self.max_units = max_units
        self.progress = progress
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else min(DEFAULT_HEARTBEAT_CAP, lease_ttl / 3.0)
        )
        self.journal = journal
        self._journal: Optional[EventJournal] = None
        self._last_beat = 0.0
        self._current: Dict[str, Any] = {}

    @property
    def store_dir(self) -> Path:
        """This worker's own shard directory."""
        return self.results_root / self.worker_id

    # ------------------------------------------------------------------
    # journal + heartbeats
    # ------------------------------------------------------------------
    def _emit(self, type: str, **fields: Any) -> None:
        if self._journal is None:
            return
        with contextlib.suppress(OSError):
            self._journal.append(type, **fields)

    def _heartbeat(self, *, force: bool = False, phase: str = "unit") -> None:
        """Periodic liveness: renew the in-flight lease, record a heartbeat.

        Renewal is the load-bearing half — a unit that takes longer than
        the lease TTL keeps its lease as long as its worker is alive and
        beating, so long units are no longer stolen mid-execution (ROADMAP
        item 4).  The journal half makes the same cadence observable.
        """
        now = time.time()
        if not force and now - self._last_beat < self.heartbeat_interval:
            return
        self._last_beat = now
        uid = self._current.get("unit")
        if uid is not None:
            self.queue.renew_claim(uid, self.worker_id, self.lease_ttl, now=now)
        if self._journal is None:
            return
        beat: Dict[str, Any] = {
            "worker": self.worker_id,
            "pid": os.getpid(),
            "host": socket.gethostname().split(".", 1)[0],
            "unit": uid,
            "cells_done": self._current.get("cells_done"),
            "unit_total": self._current.get("unit_total"),
            "phase": phase,
            "ts": now,
        }
        snapshot = get_registry().snapshot()
        if snapshot:
            beat["metrics"] = snapshot
        with contextlib.suppress(OSError):
            self._journal.heartbeat(**beat)

    # ------------------------------------------------------------------
    # salvage
    # ------------------------------------------------------------------
    def _salvage(self, unit: WorkUnit, own: FileStore) -> Dict[str, RunRecord]:
        """Records for the unit's cells found in *sibling* worker shards.

        Opened tolerantly: a killed sibling's shard may end in a truncated
        line (always dropped) or — after genuine disk trouble — hold corrupt
        lines, which salvage mode skips rather than letting one damaged
        shard wedge the whole fleet.
        """
        wanted = [key for key in unit.keys if own.get(key) is None]
        found: Dict[str, RunRecord] = {}
        if not wanted:
            return found
        for sibling_dir in sorted(self.results_root.iterdir() if self.results_root.exists() else []):
            if not sibling_dir.is_dir() or sibling_dir == self.store_dir:
                continue
            try:
                with FileStore(sibling_dir, create=False, salvage=True) as sibling:
                    for key in wanted:
                        if key not in found:
                            record = sibling.get(key)
                            if record is not None:
                                found[key] = record
            except StoreError:
                continue  # not (yet) a store, or unreadable — skip
            if len(found) == len(wanted):
                break
        return found

    # ------------------------------------------------------------------
    # unit execution
    # ------------------------------------------------------------------
    def process_unit(self, unit: WorkUnit, own: FileStore) -> Dict[str, int]:
        """Execute one leased unit; returns its done-marker counters.

        Cells already in the worker's own store (its previous life) count as
        ``cached``; cells found in sibling shards (a dead worker's partial
        progress) count as ``salvaged``; only the remainder is ``executed``
        — through the ordinary :func:`run_sweep` path, so records are
        persisted cell by cell and byte-identical to a serial run's.
        """
        started = time.perf_counter()
        cached_keys = [key for key in unit.keys if own.get(key) is not None]
        salvaged = self._salvage(unit, own)
        to_run = [
            spec
            for spec, key in zip(unit.specs, unit.keys)
            if key not in salvaged and own.get(key) is None
        ]
        uid = unit.unit
        self._current = {
            "unit": uid,
            "cells_done": len(cached_keys) + len(salvaged),
            "unit_total": len(unit),
        }
        self._emit(
            "unit.start",
            unit=uid,
            worker=self.worker_id,
            cells=len(unit),
            cached=len(cached_keys),
            salvaged=len(salvaged),
            to_run=len(to_run),
        )
        # Per-key events for the cells satisfied without execution, so the
        # journal accounts for every key of the unit, not just fresh work.
        for key in cached_keys:
            self._emit("cell.done", unit=uid, key=key, status="cached")
        for key in salvaged:
            self._emit("cell.done", unit=uid, key=key, status="salvaged")
        self._heartbeat(force=True)  # renew at unit start: the clock is full

        cell_clock = {"last": time.perf_counter()}

        def on_cell(done: int, total: int, record: RunRecord, cached: bool = False) -> None:
            now = time.perf_counter()
            seconds = now - cell_clock["last"]
            cell_clock["last"] = now
            self._current["cells_done"] = self._current.get("cells_done", 0) + 1
            # run_sweep persists the record *before* this callback, so a
            # cell.done event always implies a durable store line.
            self._emit(
                "cell.done",
                unit=uid,
                key=record.spec.key(),
                status="executed",
                seconds=round(seconds, 6),
            )
            self._heartbeat()

        result = run_sweep(
            to_run, executor=SerialExecutor(), store=own, progress=on_cell
        )
        counts = {
            "total": len(unit),
            "cached": len(cached_keys),
            "salvaged": len(salvaged),
            "executed": result.executed,
        }
        registry = get_registry()
        registry.histogram(
            "repro_queue_unit_seconds", "Wall time per processed work unit"
        ).observe(time.perf_counter() - started)
        cells = registry.counter(
            "repro_queue_unit_cells_total", "Unit cells by how they were satisfied"
        )
        for status in ("cached", "salvaged", "executed"):
            if counts[status]:
                cells.inc(counts[status], status=status)
        return counts

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(self) -> Dict[str, int]:
        """Process units until the queue is drained (or ``max_units`` hit).

        Returns this worker's totals::

            {"units": ..., "total": ..., "cached": ..., "salvaged": ...,
             "executed": ...}
        """
        totals = {"units": 0, "total": 0, "cached": 0, "salvaged": 0, "executed": 0}
        if self.journal:
            try:
                self._journal = self.queue.attach_journal(self.worker_id)
            except ReproError:
                self._journal = None  # unjournalable worker id: run dark
        self._emit(
            "worker.start",
            worker=self.worker_id,
            pid=os.getpid(),
            host=socket.gethostname().split(".", 1)[0],
        )
        with FileStore(self.store_dir, create=True) as own:
            while True:
                pending = [uid for uid in self.queue.units() if not self.queue.is_done(uid)]
                if not pending:
                    break
                progressed = False
                for uid in pending:
                    if self.max_units is not None and totals["units"] >= self.max_units:
                        self._emit("worker.exit", worker=self.worker_id, **totals)
                        return totals
                    if not self.queue.try_claim(uid, self.worker_id, self.lease_ttl):
                        continue
                    try:
                        if self.queue.is_done(uid):  # finished while we claimed
                            continue
                        unit = self.queue.load_unit(uid)
                        counts = self.process_unit(unit, own)
                        own.flush()
                        # Carry the claim's steal provenance into the durable
                        # done marker (the claim file dies with the release).
                        claim = self.queue.read_claim(uid) or {}
                        self.queue.write_done(
                            uid,
                            {
                                "unit": uid,
                                "worker": self.worker_id,
                                "keys": list(unit.keys),
                                "steals": int(claim.get("steals", 0)),
                                **counts,
                            },
                        )
                    finally:
                        self._current = {}
                        self.queue.release_claim(uid, self.worker_id)
                    totals["units"] += 1
                    for name in ("total", "cached", "salvaged", "executed"):
                        totals[name] += counts[name]
                    progressed = True
                    if self.progress is not None:
                        self.progress(uid, counts)
                if not progressed:
                    # Everything left is validly leased elsewhere: wait for
                    # done markers to appear or leases to expire.
                    self._heartbeat(phase="idle")
                    time.sleep(self.poll)
        self._current = {}
        self._heartbeat(force=True, phase="exit")
        self._emit("worker.exit", worker=self.worker_id, **totals)
        return totals
