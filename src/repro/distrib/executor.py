"""``QueueExecutor``: the work-queue fabric behind the ``Executor`` seam.

``run_sweep(sweep, executor=QueueExecutor(workers=4))`` dispatches the
sweep's cells into a (temporary, unless given) queue directory, spawns
``workers`` local worker processes (``python -m repro worker …``), streams
progress as done markers appear, and returns the records in cell order —
exactly the contract of the serial and process-pool executors, so stores,
experiments and the CLI compose with it unchanged.

The moment the queue directory lives on a shared filesystem (or its units
are shipped), the same run scales past one machine: the spawned local
workers are then merely *some* of the fleet, and remote ``repro worker``
processes drain the same queue.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..exceptions import QueueError, ReproError
from ..runtime.executors import Executor, ProgressCallback
from ..runtime.records import RunRecord
from ..runtime.spec import ScenarioSpec
from ..store.filestore import FileStore
from .dispatcher import DEFAULT_UNIT_SIZE, Dispatcher
from .queue import WorkQueue
from .worker import DEFAULT_LEASE_TTL

__all__ = ["QueueExecutor"]


def _worker_env() -> Dict[str, str]:
    """Child env with the package importable even from a bare checkout."""
    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (package_root, env.get("PYTHONPATH")) if part
    )
    return env


class QueueExecutor(Executor):
    """Fan sweep cells out over leased work units and worker processes.

    Tracing is a per-process concern and worker processes run their own
    telemetry, so ``supports_trace`` is ``False``: ``run_sweep(...,
    trace=True)`` degrades to an untraced run with a warning.  A *direct*
    ``map_specs(..., trace=True)`` call still raises — silently ignoring an
    explicit request would misreport what ran.

    Parameters
    ----------
    workers:
        Local worker processes to spawn per ``map_specs`` call.
    queue_dir:
        Queue directory.  ``None`` uses a fresh temporary directory that is
        removed after a clean drain; an explicit directory is kept (that is
        the multi-machine workflow: point remote ``repro worker`` processes
        at it too, or ship its ``results/`` shards for a later merge).
    unit_size, lease_ttl, poll:
        Dispatch batching and the lease parameters handed to the workers.
    spawn_timeout:
        Upper bound in seconds for the whole drain once every local worker
        has exited; ``None`` waits forever (e.g. when external workers are
        expected to finish the queue).
    journal:
        Whether the dispatch and the spawned workers emit fleet events into
        ``<queue>/journal``.  On by default; ``journal=False`` is the
        measurement configuration (``benchmarks/bench_distrib_executors.py``
        times both to bound the journal's overhead).
    """

    supports_trace = False

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_dir: Optional[Union[str, Path]] = None,
        unit_size: int = DEFAULT_UNIT_SIZE,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll: float = 0.1,
        spawn_timeout: Optional[float] = 600.0,
        journal: bool = True,
    ) -> None:
        if workers < 1:
            raise ReproError(f"queue executor needs at least one worker, got {workers}")
        self.workers = workers
        self.queue_dir = None if queue_dir is None else Path(queue_dir)
        self.unit_size = unit_size
        self.lease_ttl = lease_ttl
        self.poll = poll
        self.spawn_timeout = spawn_timeout
        self.journal = journal

    # ------------------------------------------------------------------
    # worker fleet
    # ------------------------------------------------------------------
    def _spawn_workers(self, queue: WorkQueue) -> List[subprocess.Popen]:
        env = _worker_env()
        procs = []
        for index in range(self.workers):
            worker_id = f"local-{os.getpid()}-{index}"
            log_path = queue.logs_root / f"{worker_id}.log"
            argv = [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--queue",
                str(queue.root),
                "--worker-id",
                worker_id,
                "--lease-ttl",
                str(self.lease_ttl),
                "--poll",
                str(max(self.poll, 0.05)),
                "--quiet",
            ]
            if not self.journal:
                argv.append("--no-journal")
            with log_path.open("w", encoding="utf-8") as log:
                procs.append(
                    subprocess.Popen(
                        argv,
                        stdout=log,
                        stderr=subprocess.STDOUT,
                        env=env,
                    )
                )
        return procs

    @staticmethod
    def _log_tails(queue: WorkQueue, limit: int = 400) -> str:
        tails = []
        for path in sorted(queue.logs_root.glob("*.log")):
            text = path.read_text(encoding="utf-8", errors="replace").strip()
            if text:
                tails.append(f"--- {path.name} ---\n{text[-limit:]}")
        return "\n".join(tails)

    # ------------------------------------------------------------------
    # record collection
    # ------------------------------------------------------------------
    @staticmethod
    def _collect(queue: WorkQueue, keys: List[str]) -> Dict[str, RunRecord]:
        """Look ``keys`` up across every worker shard of the queue."""
        found: Dict[str, RunRecord] = {}
        for shard_dir in queue.result_store_dirs():
            missing = [key for key in keys if key not in found]
            if not missing:
                break
            try:
                with FileStore(shard_dir, create=False, salvage=True) as store:
                    for key in missing:
                        record = store.get(key)
                        if record is not None:
                            found[key] = record
            except ReproError:
                continue
        return found

    # ------------------------------------------------------------------
    # Executor interface
    # ------------------------------------------------------------------
    def map_specs(
        self,
        specs: List[ScenarioSpec],
        model=None,
        progress: Optional[ProgressCallback] = None,
        trace: bool = False,
    ) -> List[RunRecord]:
        if model is not None:
            raise ReproError(
                "the queue executor cannot ship a live cost-model override to "
                "worker processes; name the model in the specs' cost_model field"
            )
        if trace:
            raise ReproError(
                "the queue executor cannot trace cells: tracing is a per-process "
                "concern and worker processes run their own telemetry; use the "
                "serial or pool executor for traced sweeps"
            )
        total = len(specs)
        if total == 0:
            return []
        queue_root = self.queue_dir
        ephemeral = queue_root is None
        if ephemeral:
            queue_root = Path(tempfile.mkdtemp(prefix="repro-queue-"))
        queue = WorkQueue(queue_root, create=True)
        report = Dispatcher(
            queue, unit_size=self.unit_size, journal=self.journal
        ).dispatch(specs)
        # Watch exactly this sweep's units: a reused queue directory may hold
        # other sweeps' units (finished or not), which are none of our business.
        unit_ids = report["unit_ids"]

        procs = self._spawn_workers(queue)
        done_seen: set = set()
        found: Dict[str, RunRecord] = {}
        deadline: Optional[float] = None
        try:
            while True:
                for uid in unit_ids:
                    if uid in done_seen or not queue.is_done(uid):
                        continue
                    done_seen.add(uid)
                    marker = queue.read_done(uid) or {}
                    for key, record in self._collect(
                        queue, list(marker.get("keys", ()))
                    ).items():
                        found[key] = record
                        if progress is not None:
                            progress(len(found), total, record)
                if len(done_seen) == len(unit_ids):
                    break
                if all(proc.poll() is not None for proc in procs):
                    # No local worker left; give stragglers' done markers (or
                    # external workers) a bounded grace period.
                    if any(proc.returncode not in (0, None) for proc in procs):
                        raise QueueError(
                            "worker process(es) failed before the queue drained:\n"
                            + self._log_tails(queue)
                        )
                    now = time.time()
                    if deadline is None:
                        deadline = (
                            None if self.spawn_timeout is None else now + self.spawn_timeout
                        )
                    if deadline is not None and now > deadline:
                        raise QueueError(
                            "queue not drained and no worker is running:\n"
                            + self._log_tails(queue)
                        )
                time.sleep(self.poll)
            for proc in procs:
                proc.wait()
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                if proc.poll() is None:  # pragma: no cover - defensive
                    try:
                        proc.wait(timeout=5)
                    except subprocess.TimeoutExpired:
                        proc.kill()

        # The polling loop already collected (almost) everything; only probe
        # the shards again for keys it has not seen.
        still_wanted = [spec.key() for spec in specs if spec.key() not in found]
        if still_wanted:
            found.update(self._collect(queue, still_wanted))
        missing = [spec.key() for spec in specs if spec.key() not in found]
        if missing:
            raise QueueError(
                f"{len(missing)} cell(s) missing from the worker shards after "
                f"the drain (first: {missing[0][:12]}…):\n" + self._log_tails(queue)
            )
        records = [found[spec.key()] for spec in specs]
        if ephemeral:
            shutil.rmtree(queue_root, ignore_errors=True)
        return records
