"""Executor comparison macro-benchmark: serial vs the work-queue fabric.

The same sweep is run through the serial executor and through
``executor="queue"`` with two local worker processes.  The queue run pays
the fabric's overhead — dispatch, worker spawn, lease traffic, shard
collection — so on a grid this small it is *expected* to be slower; the
benchmark exists to track that overhead across PRs (it is the constant the
fleet must amortise) rather than to show a speed-up.
"""

from __future__ import annotations

from repro.runtime.executors import make_executor, run_sweep
from repro.runtime.spec import SweepSpec

from ._harness import run_once

SWEEP = SweepSpec(sizes=(4, 6, 8, 10), seeds=(0, 1, 2), name="distrib-bench")


def test_serial_executor_reference(benchmark):
    result = run_once(benchmark, run_sweep, SWEEP)
    assert len(result) == len(SWEEP)


def test_queue_executor_two_workers(benchmark, tmp_path):
    executor = make_executor(
        2, kind="queue", queue_dir=tmp_path / "queue", unit_size=3
    )
    result = run_once(benchmark, run_sweep, SWEEP, executor=executor)
    assert len(result) == len(SWEEP)
    assert result.records == run_sweep(SWEEP).records
