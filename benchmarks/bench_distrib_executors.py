"""Executor comparison macro-benchmark: serial vs the work-queue fabric.

The same sweep is run through the serial executor and through
``executor="queue"`` with two local worker processes.  The queue run pays
the fabric's overhead — dispatch, worker spawn, lease traffic, shard
collection — so on a grid this small it is *expected* to be slower; the
benchmark exists to track that overhead across PRs (it is the constant the
fleet must amortise) rather than to show a speed-up.

``test_journal_overhead`` times the same queue run with the event journal
on and off and records the overhead fraction — the observability tax on
fleet throughput, budgeted at <= 5% of cells/sec.
"""

from __future__ import annotations

import time

from repro.runtime.executors import make_executor, run_sweep
from repro.runtime.spec import SweepSpec

from ._harness import record_bench, run_once

SWEEP = SweepSpec(sizes=(4, 6, 8, 10), seeds=(0, 1, 2), name="distrib-bench")


def test_serial_executor_reference(benchmark):
    result = run_once(benchmark, run_sweep, SWEEP)
    assert len(result) == len(SWEEP)


def test_queue_executor_two_workers(benchmark, tmp_path):
    executor = make_executor(
        2, kind="queue", queue_dir=tmp_path / "queue", unit_size=3
    )
    result = run_once(benchmark, run_sweep, SWEEP, executor=executor)
    assert len(result) == len(SWEEP)
    assert result.records == run_sweep(SWEEP).records


def test_journal_overhead(benchmark, tmp_path):
    """Queue run with the journal on vs off; overhead fraction recorded.

    Both configurations run inside the single measured round (so the pair
    shares one machine state) and the journalled run's wall time is what the
    benchmark reports — directly comparable to ``test_queue_executor_two_workers``.
    """

    def one(journal: bool, label: str) -> float:
        executor = make_executor(
            2, kind="queue", queue_dir=tmp_path / label, unit_size=3,
            journal=journal,
        )
        started = time.perf_counter()
        result = run_sweep(SWEEP, executor=executor)
        seconds = time.perf_counter() - started
        assert len(result) == len(SWEEP)
        return seconds

    timing = {}

    def pair() -> None:
        timing["off"] = one(False, "dark")
        timing["on"] = one(True, "journalled")

    benchmark.pedantic(pair, rounds=1, iterations=1)
    overhead = (timing["on"] - timing["off"]) / timing["off"]
    record_bench(
        benchmark.name,
        timing["on"],
        cells=len(SWEEP),
        extra={
            "seconds_journal_off": round(timing["off"], 6),
            "journal_overhead_fraction": round(overhead, 4),
        },
    )
