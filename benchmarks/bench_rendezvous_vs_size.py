"""E1: measured rendezvous cost versus graph size (Theorem 3.1).

Runs Algorithm RV-asynch-poly and the exponential baseline on rings and
random graphs of increasing size, under a fair and an adversarial scheduler,
and prints the measured cost-to-meeting table.

The benchmark drives the scenario runtime directly: it declares the grid as
a :class:`~repro.runtime.spec.SweepSpec` and executes it with
:func:`~repro.runtime.executors.run_sweep`, which is exactly what the
experiment driver and the ``repro sweep`` CLI do.
"""

from __future__ import annotations

from repro.runtime import SweepSpec
from repro.runtime.executors import run_sweep

from ._harness import emit, run_once

SWEEP = SweepSpec(
    problems=("rendezvous", "baseline"),
    families=("ring", "erdos_renyi"),
    sizes=(4, 6, 8, 10, 12, 16),
    schedulers=("round_robin", "avoider"),
    label_sets=((6, 11),),
    max_traversals=1_000_000,
    name="e1-rendezvous-vs-size",
)


def test_rendezvous_vs_size(benchmark, sim_model):
    result = run_once(benchmark, run_sweep, SWEEP, model=sim_model)
    emit(
        "e1_rendezvous_vs_size",
        result.table(title="E1: measured rendezvous cost vs graph size"),
    )
    assert result.all_ok
    rv = result.filter(problem="rendezvous")
    assert rv.max_cost() <= 1_000_000
