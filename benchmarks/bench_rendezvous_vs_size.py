"""E1: measured rendezvous cost versus graph size (Theorem 3.1).

Runs Algorithm RV-asynch-poly and the exponential baseline on rings and
random graphs of increasing size, under a fair and an adversarial scheduler,
and prints the measured cost-to-meeting table.

The benchmark runs the registered E1 :class:`ExperimentSpec` (with a wider
size grid than the default table) through
:func:`~repro.analysis.experiment_spec.run_experiment` — exactly what
``repro experiment E1`` does — so the printed artifact is the experiment's
own table.
"""

from __future__ import annotations

from repro.analysis.experiment_spec import experiment_spec, run_experiment

from ._harness import emit, run_once

SPEC = experiment_spec(
    "E1",
    sizes=(4, 6, 8, 10, 12, 16),
    max_traversals=1_000_000,
)


def test_rendezvous_vs_size(benchmark, sim_model):
    result = run_once(benchmark, run_experiment, SPEC, model=sim_model)
    emit("e1_rendezvous_vs_size", result.render())
    assert result.result.all_ok
    rv = result.result.filter(problem="rendezvous")
    assert rv.max_cost() <= 1_000_000
