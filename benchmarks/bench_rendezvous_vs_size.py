"""E1: measured rendezvous cost versus graph size (Theorem 3.1).

Runs Algorithm RV-asynch-poly and the exponential baseline on rings and
random graphs of increasing size, under a fair and an adversarial scheduler,
and prints the measured cost-to-meeting table.
"""

from __future__ import annotations

from repro.analysis import experiments

from ._harness import emit, run_once


def test_rendezvous_vs_size(benchmark, sim_model):
    records = run_once(
        benchmark,
        experiments.rendezvous_vs_size,
        sizes=(4, 6, 8, 10, 12, 16),
        family_names=("ring", "erdos_renyi"),
        scheduler_names=("round_robin", "avoider"),
        algorithms=("rv_asynch_poly", "baseline"),
        model=sim_model,
        max_traversals=1_000_000,
    )
    emit("e1_rendezvous_vs_size", experiments.rendezvous_vs_size_table(records))
    assert all(record.met for record in records)
    rv_costs = [r.cost for r in records if r.algorithm == "rv_asynch_poly"]
    assert max(rv_costs) <= 1_000_000
