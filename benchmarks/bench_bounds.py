"""E3: the analytic worst-case guarantees (Theorem 3.1 versus prior work).

Pure computation (no simulation): tabulates ``Π(n, |L|)`` and the exponential
baseline guarantee over a grid of sizes and labels, classifies their growth,
and reports where the crossover falls.  Also sweeps the exponent of the
exploration polynomial ``P`` (the ablation called out in DESIGN.md).

The guarantee grid is the registered E3 :class:`ExperimentSpec` (the
``"bounds"`` problem kind, one cell per (n, L)); the ablation keeps driving
``run_sweep`` directly because each exponent needs its own live cost model.
"""

from __future__ import annotations

from repro.analysis.experiment_spec import experiment_spec, run_experiment
from repro.analysis.fitting import fit_power_law
from repro.exploration.cost_model import PaperCostModel
from repro.runtime import ScenarioSpec
from repro.runtime.executors import run_sweep

from ._harness import emit, run_once

SIZES = (2, 4, 8, 16, 32)
LABELS = (1, 2, 4, 8, 16, 32, 64)

SPEC = experiment_spec("E3", sizes=SIZES, labels=LABELS)


def test_bound_scaling(benchmark, paper_model):
    result = run_once(benchmark, run_experiment, SPEC, model=paper_model)
    emit("e3_bound_scaling", result.render())
    # The crossover: for long enough labels the polynomial guarantee wins.
    largest_label = max(row["label"] for row in result.rows)
    for row in result.rows:
        if row["label"] == largest_label:
            assert row["baseline_bound"] > row["rv_bound"]
    # The RV bound depends on the label only through its length.
    by_length = {}
    for row in result.rows:
        by_length.setdefault((row["n"], row["label_length"]), set()).add(row["rv_bound"])
    assert all(len(values) == 1 for values in by_length.values())


def test_bound_ablation_on_exploration_polynomial(benchmark):
    """How the degree of P(k) propagates into the degree of Π(n, m).

    Each exponent gets its own live cost model (the registry's ``paper``
    model has the paper's fixed exponent), so the sweep passes the model as
    an override on top of the same ``bounds`` cells.
    """

    def sweep():
        rows = []
        cells = [
            ScenarioSpec(problem="bounds", family="path", size=n, labels=(2, 3), cost_model="paper")
            for n in (4, 8, 16, 32)
        ]
        for exponent in (1, 2, 3):
            model = PaperCostModel(length_coefficient=1, length_exponent=exponent)
            result = run_sweep(cells, model=model)
            sizes = [record.graph_size for record in result]
            bounds = [record.extra_dict["rv_bound"] for record in result]
            fit = fit_power_law(sizes, bounds)
            rows.append((exponent, fit.slope, bounds[-1]))
        return rows

    rows = run_once(benchmark, sweep)
    lines = ["P(k) exponent -> fitted degree of Pi(n, 2) in n, Pi(32, 2):"]
    for exponent, slope, largest in rows:
        lines.append(f"  P(k) = k^{exponent}:  degree ~ {slope:.1f}   Pi(32, 2) = {largest:.3e}")
    emit("e3_bound_ablation_P_exponent", "\n".join(lines))
    degrees = [slope for _exponent, slope, _largest in rows]
    assert degrees == sorted(degrees)
