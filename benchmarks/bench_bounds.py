"""E3: the analytic worst-case guarantees (Theorem 3.1 versus prior work).

Pure computation (no simulation): tabulates ``Π(n, |L|)`` and the exponential
baseline guarantee over a grid of sizes and labels, classifies their growth,
and reports where the crossover falls.  Also sweeps the exponent of the
exploration polynomial ``P`` (the ablation called out in DESIGN.md).
"""

from __future__ import annotations

from repro.analysis import experiments
from repro.analysis.fitting import fit_power_law
from repro.core.bounds import compare_bounds
from repro.exploration.cost_model import PaperCostModel

from ._harness import emit, run_once


def test_bound_scaling(benchmark, paper_model):
    records = run_once(
        benchmark,
        experiments.bound_scaling,
        sizes=(2, 4, 8, 16, 32),
        labels=(1, 2, 4, 8, 16, 32, 64),
        model=paper_model,
    )
    emit("e3_bound_scaling", experiments.bound_scaling_table(records))
    # The crossover: for long enough labels the polynomial guarantee wins.
    largest_label = max(record.label for record in records)
    for record in records:
        if record.label == largest_label:
            assert record.baseline_bound > record.rv_bound
    # The RV bound depends on the label only through its length.
    by_length = {}
    for record in records:
        by_length.setdefault((record.n, record.label_length), set()).add(record.rv_bound)
    assert all(len(values) == 1 for values in by_length.values())


def test_bound_ablation_on_exploration_polynomial(benchmark):
    """How the degree of P(k) propagates into the degree of Π(n, m)."""

    def sweep():
        rows = []
        for exponent in (1, 2, 3):
            model = PaperCostModel(length_coefficient=1, length_exponent=exponent)
            sizes = (4, 8, 16, 32)
            bounds = [model.pi_bound(n, 2) for n in sizes]
            fit = fit_power_law(sizes, bounds)
            rows.append((exponent, fit.slope, bounds[-1]))
        return rows

    rows = run_once(benchmark, sweep)
    lines = ["P(k) exponent -> fitted degree of Pi(n, 2) in n, Pi(32, 2):"]
    for exponent, slope, largest in rows:
        lines.append(f"  P(k) = k^{exponent}:  degree ~ {slope:.1f}   Pi(32, 2) = {largest:.3e}")
    emit("e3_bound_ablation_P_exponent", "\n".join(lines))
    degrees = [slope for _exponent, slope, _largest in rows]
    assert degrees == sorted(degrees)
