"""Small helpers shared by the benchmark files."""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

#: Directory in which each benchmark drops the table it regenerated.
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Machine-readable per-bench metrics (wall time, cells/sec).  The file is a
#: timestamped **history** — one entry appended per benchmark session, never
#: overwritten — so the perf trajectory accumulates across PRs; ``"latest"``
#: mirrors the most recent value per benchmark for easy consumption.
BENCH_RESULTS = RESULTS_DIR / "BENCH_results.json"

#: One history entry per process: every ``record_bench`` call of a pytest
#: session lands in the same timestamped bucket.
_SESSION = {"stamp": None}


def _load_results() -> dict:
    """Read ``BENCH_results.json``, upgrading the legacy flat layout.

    Pre-history files were a plain ``{name: entry}`` mapping (overwritten on
    every run); they become the first history entry with a ``None``
    timestamp so no measured point is lost in the migration.
    """
    try:
        data = json.loads(BENCH_RESULTS.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {"history": [], "latest": {}}
    if not isinstance(data, dict):
        return {"history": [], "latest": {}}
    if isinstance(data.get("history"), list):
        data.setdefault("latest", {})
        return data
    legacy = {name: entry for name, entry in data.items() if isinstance(entry, dict)}
    history = [{"timestamp": None, "benches": legacy}] if legacy else []
    return {"history": history, "latest": dict(legacy)}


def record_bench(
    name: str,
    seconds: float,
    cells: int | None = None,
    extra: dict | None = None,
) -> None:
    """Append one benchmark's metrics to the ``BENCH_results.json`` history.

    Each entry carries the wall time of the single measured run and, when
    the benchmark's result is sized (a sweep / experiment), the cell count
    and throughput.  ``extra`` merges additional per-bench metrics into the
    entry (e.g. the engine microbenchmark's lattice-ops-per-decision).  All
    ``record_bench`` calls of one process share one timestamped history
    entry; re-running a benchmark within a session updates its value in
    place, while a new session appends — earlier sessions are never
    rewritten.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    results = _load_results()
    if _SESSION["stamp"] is None:
        _SESSION["stamp"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    history = results["history"]
    if not history or history[-1].get("timestamp") != _SESSION["stamp"]:
        history.append({"timestamp": _SESSION["stamp"], "benches": {}})
    entry: dict = {"seconds": round(seconds, 6)}
    if cells is not None:
        entry["cells"] = cells
        entry["cells_per_sec"] = round(cells / seconds, 3) if seconds > 0 else None
    if extra:
        entry.update(extra)
    history[-1]["benches"][name] = entry
    results["latest"][name] = entry
    BENCH_RESULTS.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


#: Throughput slowdown factor beyond which the perf gate fails: a bench
#: whose cells/sec drops below ``best-recorded / 1.5`` is a regression.
REGRESSION_THRESHOLD = 1.5


def check_regression(
    benches: dict, history: list, *, threshold: float = REGRESSION_THRESHOLD
) -> list[str]:
    """Compare one session's bench entries against a stored history.

    For every bench in ``benches`` that carries a ``cells_per_sec``
    throughput, the baseline is the *best* throughput any ``history`` entry
    records under the same name (the deterministic choice — the most recent
    entry would make the gate flap on a single slow session).  A new
    throughput below ``baseline / threshold`` is a regression.

    Returns a list of human-readable problem strings; an empty list means
    the gate passes.  Benches without throughput (unsized results) or
    without any historical baseline are skipped — the gate can only compare
    what was measured before.
    """
    problems: list[str] = []
    for name in sorted(benches):
        entry = benches[name]
        rate = entry.get("cells_per_sec") if isinstance(entry, dict) else None
        if not rate:
            continue
        baseline = 0.0
        for past in history:
            old = past.get("benches", {}).get(name, {})
            old_rate = old.get("cells_per_sec") if isinstance(old, dict) else None
            if old_rate:
                baseline = max(baseline, float(old_rate))
        if baseline <= 0.0:
            continue
        if rate < baseline / threshold:
            problems.append(
                f"{name}: {rate:.3f} cells/sec is a >{threshold:g}x slowdown "
                f"against the best recorded {baseline:.3f} cells/sec"
            )
    return problems


def check_latest_regression(*, threshold: float = REGRESSION_THRESHOLD) -> list[str]:
    """Gate the most recent ``BENCH_results.json`` session against the rest.

    The newest history entry is the candidate; every earlier entry supplies
    the baseline.  With fewer than two history entries there is nothing to
    compare and the gate passes vacuously.
    """
    history = _load_results()["history"]
    if len(history) < 2:
        return []
    return check_regression(
        history[-1].get("benches", {}), history[:-1], threshold=threshold
    )


def _cell_count(result) -> int | None:
    """The number of sweep cells a benchmark result covers, if it is sized."""
    for candidate in (result, getattr(result, "result", None), getattr(result, "records", None)):
        try:
            return len(candidate)
        except TypeError:
            continue
    return None


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The benchmarks are macro-benchmarks (whole experiment drivers); repeating
    them would multiply the suite's runtime without improving the measurement.
    The single run's wall time (and cells/sec when the result is sized) is
    additionally persisted to ``BENCH_results.json``.
    """
    timing = {}

    def timed(*call_args, **call_kwargs):
        started = time.perf_counter()
        result = function(*call_args, **call_kwargs)
        timing["seconds"] = time.perf_counter() - started
        return result

    result = benchmark.pedantic(timed, args=args, kwargs=kwargs, rounds=1, iterations=1)
    record_bench(benchmark.name, timing["seconds"], _cell_count(result))
    return result


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under ``benchmarks/results/``.

    pytest captures stdout of passing tests, so the persisted copy is what a
    user reads after ``pytest benchmarks/ --benchmark-only``; the printed copy
    shows up when running with ``-s`` (or on failure).
    """
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
