"""Small helpers shared by the benchmark files."""

from __future__ import annotations

from pathlib import Path

#: Directory in which each benchmark drops the table it regenerated.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The benchmarks are macro-benchmarks (whole experiment drivers); repeating
    them would multiply the suite's runtime without improving the measurement.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under ``benchmarks/results/``.

    pytest captures stdout of passing tests, so the persisted copy is what a
    user reads after ``pytest benchmarks/ --benchmark-only``; the printed copy
    shows up when running with ``-s`` (or on failure).
    """
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
