"""Engine microbenchmark: decisions/sec and lattice ops per decision.

The whole-table sweeps (E1–E6) measure the stack end to end; this file
ratchets the engine loop itself, so a regression in the hot path shows up in
``BENCH_results.json`` even when the experiment drivers mask it.  Two
adversaries cover the two execution paths:

* ``round_robin`` — complete traversals only; the engine runs its fused
  round-robin loop where occupancy lives in a flat node array.
* ``avoider`` — partial advances chosen through ``max_safe_advance``; agents
  sit strictly inside edges, so every decision exercises the per-edge integer
  lattices of the neighbor index.

Both runs burn a fixed traversal budget with no rendezvous goal, so every
timed run does identical work.  "Lattice ops" is the index-maintenance tally:
occupancy updates plus lattice rescales (the same quantities traced runs
report as ``engine.index_updates`` / ``engine.lattice_rescales``).
"""

from __future__ import annotations

import time

from repro.core.rendezvous import RendezvousController
from repro.runtime import ScenarioSpec
from repro.runtime.runner import build_graph, build_scheduler
from repro.sim import AgentSpec, AsyncEngine

from ._harness import emit, record_bench

TRAVERSAL_BUDGET = 20_000


def _spec(scheduler: str) -> ScenarioSpec:
    return ScenarioSpec(
        problem="rendezvous",
        family="ring",
        size=8,
        labels=(6, 11),
        starts=(0, 4),
        scheduler=scheduler,
        scheduler_params=(("patience", 4),) if scheduler == "avoider" else (),
        max_traversals=TRAVERSAL_BUDGET,
        on_cost_limit="return",
        name=f"engine-decisions-{scheduler}",
    )


def _drive(scheduler: str, sim_model):
    spec = _spec(scheduler)
    engine = AsyncEngine(
        build_graph(spec),
        [
            AgentSpec(
                RendezvousController("agent-1", spec.labels[0], sim_model),
                spec.starts[0],
            ),
            # No rendezvous goal: the run always exhausts its budget.
            AgentSpec(
                RendezvousController("agent-2", spec.labels[1], sim_model),
                spec.starts[1],
            ),
        ],
        build_scheduler(spec),
        max_traversals=spec.max_traversals,
        on_cost_limit=spec.on_cost_limit,
    )
    return engine, engine.run()


def _measure(benchmark, scheduler: str, sim_model) -> str:
    timing: dict = {}

    def timed():
        started = time.perf_counter()
        engine, result = _drive(scheduler, sim_model)
        timing["seconds"] = time.perf_counter() - started
        return engine, result

    engine, result = benchmark.pedantic(timed, rounds=1, iterations=1)
    seconds = timing["seconds"]
    index = engine.neighbor_index
    lattice_ops = index.updates + index.rescales()
    decisions = result.decisions
    per_decision = lattice_ops / decisions if decisions else 0.0
    record_bench(
        benchmark.name,
        seconds,
        cells=decisions,
        extra={
            "lattice_ops": lattice_ops,
            "lattice_ops_per_decision": round(per_decision, 4),
        },
    )
    line = (
        f"{scheduler}: {decisions} decisions in {seconds:.3f}s "
        f"({decisions / seconds:,.0f} decisions/s), "
        f"{lattice_ops} lattice ops ({per_decision:.3f} per decision)"
    )
    assert result.total_traversals >= TRAVERSAL_BUDGET
    assert decisions > 0
    return line


def test_engine_decisions_round_robin(benchmark, sim_model):
    line = _measure(benchmark, "round_robin", sim_model)
    emit("engine_decisions_round_robin", line)


def test_engine_decisions_avoider(benchmark, sim_model):
    line = _measure(benchmark, "avoider", sim_model)
    emit("engine_decisions_avoider", line)
