"""E6: Algorithm SGL and the four team problems (Theorem 4.1).

Measures the total cost (edge traversals by all agents until every agent has
output the full label set) as the graph and the team grow, and checks that
every output is correct — which immediately gives team size, leader election,
perfect renaming and gossiping.

The scaling grid is the registered E6 :class:`ExperimentSpec` (explicit
cells: team sizes that exceed the built graph are skipped); the gossiping
instance is a single declarative
:class:`~repro.runtime.spec.ScenarioSpec` carrying per-member ``values`` —
the gossip answers come back in the record's ``value_maps`` extra.
"""

from __future__ import annotations

from repro.analysis.experiment_spec import experiment_spec, run_experiment
from repro.runtime import ScenarioSpec
from repro.runtime.runner import run

from ._harness import emit, run_once


def test_team_scaling(benchmark, sim_model):
    spec = experiment_spec(
        "E6", sizes=(4, 5, 6), team_sizes=(2, 3), max_traversals=8_000_000
    )
    result = run_once(benchmark, run_experiment, spec, model=sim_model)
    emit("e6_team_scaling", result.render())
    assert result.result.all_ok


def test_gossiping_on_a_random_graph(benchmark, sim_model):
    # The registered erdos_renyi family is random_connected(n, 0.4, seed).
    spec = ScenarioSpec(
        problem="teams",
        family="erdos_renyi",
        size=6,
        seed=5,
        labels=(9, 4, 17),
        starts=(0, 2, 4),
        values=("inventory-A", "inventory-B", "inventory-C"),
        max_traversals=8_000_000,
        name="e6-gossiping",
    )
    record = run_once(benchmark, run, spec, model=sim_model)
    emit(
        "e6_gossiping_random_graph",
        f"gossiping on {record.graph_name}: correct={record.ok}, cost={record.cost}",
    )
    assert record.ok
    # Every agent gossips the full label -> value mapping (keys are
    # canonicalised to strings so records survive a JSON round trip).
    expected = {"9": "inventory-A", "4": "inventory-B", "17": "inventory-C"}
    value_maps = record.extra_dict["value_maps"]
    assert value_maps["9"] == expected
    assert all(mapping == expected for mapping in value_maps.values())
