"""E6: Algorithm SGL and the four team problems (Theorem 4.1).

Measures the total cost (edge traversals by all agents until every agent has
output the full label set) as the graph and the team grow, and checks that
every output is correct — which immediately gives team size, leader election,
perfect renaming and gossiping.
"""

from __future__ import annotations

from repro.analysis import experiments
from repro.graphs import families
from repro.teams import TeamMember, solve_gossiping

from ._harness import emit, run_once


def test_team_scaling(benchmark, sim_model):
    records = run_once(
        benchmark,
        experiments.team_scaling,
        sizes=(4, 5, 6),
        team_sizes=(2, 3),
        family="ring",
        model=sim_model,
        max_traversals=8_000_000,
    )
    emit("e6_team_scaling", experiments.team_scaling_table(records))
    assert all(record.correct for record in records)
    costs_by_n = {}
    for record in records:
        costs_by_n.setdefault(record.team_size, []).append((record.n, record.cost))


def test_gossiping_on_a_random_graph(benchmark, sim_model):
    graph = families.random_connected(6, 0.4, rng_seed=5)
    members = [
        TeamMember(9, 0, value="inventory-A"),
        TeamMember(4, 2, value="inventory-B"),
        TeamMember(17, 4, value="inventory-C"),
    ]

    def runner():
        return solve_gossiping(
            graph, members, model=sim_model, max_traversals=8_000_000
        )

    answers, outcome = run_once(benchmark, runner)
    emit(
        "e6_gossiping_random_graph",
        f"gossiping on {graph.name}: correct={outcome.correct}, cost={outcome.cost}",
    )
    assert outcome.correct
    assert answers[9] == {9: "inventory-A", 4: "inventory-B", 17: "inventory-C"}
