"""T1: the tick-asynchronous leader-election experiment, plus a tick-engine
micro-benchmark.

``test_t1_tick_leader`` regenerates the registered T1 table (leader election
on rings under the seeded-random interleaver, with and without crash
faults) through the same ``run_experiment`` driver as the E-series
benchmarks, so the perf gate's throughput baseline covers the tick engine's
whole stack: interleaver, fault plan, data collector and aggregation.

``test_tick_engine_throughput`` steps below the problem layer — random
walkers driven for a fixed tick budget with *no* goal predicate, so every
timed run does identical work — and reports ticks per second.
"""

from __future__ import annotations

import random

from repro.analysis.experiment_spec import experiment_spec, run_experiment
from repro.runtime import INTERLEAVERS, ScenarioSpec
from repro.runtime.runner import build_graph
from repro.ticksim import FaultPlan, TickAgent, TickEngine

from ._harness import emit, run_once

TICK_BUDGET = 3_000


def test_t1_tick_leader(benchmark):
    spec = experiment_spec("T1")
    result = run_once(benchmark, run_experiment, spec)
    emit("t1_tick_leader", result.render())
    # Consensus is guaranteed only in the fault-free half of the grid.
    fault_free = [row for row in result.rows if row["fault_rate"] == 0.0]
    assert fault_free and all(row["consensus"] for row in fault_free)


class _Walker(TickAgent):
    """Minimal mobile agent: one seeded random step per activation."""

    def __init__(self, agent_id: int, node: int, seed: int) -> None:
        super().__init__(agent_id, node)
        self._rng = random.Random(f"{seed}:bench-walk:{agent_id}")

    def on_activate(self, ctx) -> None:
        ctx.move(self._rng.randrange(ctx.degree))


def _drive_ticks():
    spec = ScenarioSpec(
        problem="tick_gathering", family="ring", size=16, name="tick-throughput"
    )
    graph = build_graph(spec)
    agents = [_Walker(index, index, spec.seed) for index in range(4)]
    engine = TickEngine(
        graph,
        agents,
        interleaver=INTERLEAVERS.create("random", seed=spec.seed),
        faults=FaultPlan.from_params({}, n_agents=4, seed=spec.seed, max_ticks=TICK_BUDGET),
        max_ticks=TICK_BUDGET,
    )
    # No goal: the run always burns the full tick budget.
    return engine.run()


def test_tick_engine_throughput(benchmark):
    result = benchmark.pedantic(_drive_ticks, rounds=3, iterations=1)
    assert result.reason == "tick_limit" and result.ticks == TICK_BUDGET
    seconds = benchmark.stats.stats.mean
    print(f"\ntick engine throughput: {result.ticks / seconds:,.0f} ticks/s")
