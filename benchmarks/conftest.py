"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the experiment tables defined in
EXPERIMENTS.md (E1–E6 and F1–F4).  The runs are macro-benchmarks — a single
execution of an experiment driver — so they use ``benchmark.pedantic`` with a
single round and print the resulting table, which therefore also ends up in
``bench_output.txt`` when the suite is run with ``--benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.exploration.cost_model import PaperCostModel, SimulationCostModel


@pytest.fixture(scope="session")
def sim_model() -> SimulationCostModel:
    """Cost model used by every executed (measured) benchmark."""
    return SimulationCostModel()


@pytest.fixture(scope="session")
def paper_model() -> PaperCostModel:
    """Cost model used by the analytic-bound benchmarks."""
    return PaperCostModel()
