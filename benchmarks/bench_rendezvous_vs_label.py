"""E2: rendezvous cost versus the (smaller) label — the headline separation.

For each label ``L`` the benchmark measures the cost-to-meeting of Algorithm
RV-asynch-poly and of the naive exponential baseline under the
delay-until-stop adversary, and tabulates the worst-case guarantees next to
the measurements: the baseline's guarantee grows exponentially in ``L``, the
paper's bound ``Π(n, |L|)`` only polynomially in the *length* of ``L``.

The benchmark runs the registered E2 :class:`ExperimentSpec` (with a longer
label grid than the default table): the sweep, the derived
``guaranteed_bound`` column and the rendering all come from the declarative
pipeline, and the growth assertions read the aggregated rows.
"""

from __future__ import annotations

from repro.analysis.experiment_spec import experiment_spec, run_experiment
from repro.analysis.fitting import classify_growth

from ._harness import emit, run_once

SMALL_LABELS = (1, 2, 4, 8, 16, 32, 64)

SPEC = experiment_spec(
    "E2",
    small_labels=SMALL_LABELS,
    max_traversals=1_000_000,
)


def test_rendezvous_vs_label(benchmark, sim_model):
    result = run_once(benchmark, run_experiment, SPEC, model=sim_model)
    assert result.result.all_ok

    bounds = {}
    for row in result.rows:
        bounds.setdefault(row["algorithm"], []).append(
            (row["label_small"], row["guaranteed_bound"])
        )
    growth = {
        algorithm: classify_growth(
            [label for label, _ in sorted(pairs)], [bound for _, bound in sorted(pairs)]
        )
        for algorithm, pairs in bounds.items()
    }
    emit(
        "e2_rendezvous_vs_label",
        result.render()
        + f"\n\nguarantee growth in the label: baseline={growth['baseline']}, "
        f"rv={growth['rv_asynch_poly']}",
    )
    assert growth["baseline"] == "exponential"
    assert growth["rv_asynch_poly"] == "polynomial"
