"""E2: rendezvous cost versus the (smaller) label — the headline separation.

For each label ``L`` the benchmark measures the cost-to-meeting of Algorithm
RV-asynch-poly and of the naive exponential baseline under the
delay-until-stop adversary, and tabulates the worst-case guarantees next to
the measurements: the baseline's guarantee grows exponentially in ``L``, the
paper's bound ``Π(n, |L|)`` only polynomially in the *length* of ``L``.
"""

from __future__ import annotations

from repro.analysis import experiments
from repro.analysis.fitting import classify_growth

from ._harness import emit, run_once


def test_rendezvous_vs_label(benchmark, sim_model):
    records = run_once(
        benchmark,
        experiments.rendezvous_vs_label,
        small_labels=(1, 2, 4, 8, 16, 32, 64),
        n=6,
        scheduler_name="delay_until_stop",
        model=sim_model,
        max_traversals=1_000_000,
    )
    table = experiments.rendezvous_vs_label_table(records)
    assert all(record.met for record in records)

    baseline = sorted(
        (r for r in records if r.algorithm == "baseline"), key=lambda r: r.label_small
    )
    rv = sorted(
        (r for r in records if r.algorithm == "rv_asynch_poly"),
        key=lambda r: r.label_small,
    )
    labels = [r.label_small for r in baseline]
    baseline_growth = classify_growth(labels, [r.guaranteed_bound for r in baseline])
    rv_growth = classify_growth(labels, [r.guaranteed_bound for r in rv])
    emit(
        "e2_rendezvous_vs_label",
        table
        + f"\n\nguarantee growth in the label: baseline={baseline_growth}, rv={rv_growth}",
    )
    assert baseline_growth == "exponential"
    assert rv_growth == "polynomial"
