"""E2: rendezvous cost versus the (smaller) label — the headline separation.

For each label ``L`` the benchmark measures the cost-to-meeting of Algorithm
RV-asynch-poly and of the naive exponential baseline under the
delay-until-stop adversary, and tabulates the worst-case guarantees next to
the measurements: the baseline's guarantee grows exponentially in ``L``, the
paper's bound ``Π(n, |L|)`` only polynomially in the *length* of ``L``.

The benchmark drives the scenario runtime directly: the label sweep is a
:class:`~repro.runtime.spec.SweepSpec` executed with
:func:`~repro.runtime.executors.run_sweep`, so it can opt into a result
store (``run_sweep(..., store=...)``) exactly like the experiment drivers.
"""

from __future__ import annotations

from repro.analysis.fitting import classify_growth
from repro.analysis.tables import format_table
from repro.runtime import SweepSpec
from repro.runtime.executors import run_sweep

from ._harness import emit, run_once

SMALL_LABELS = (1, 2, 4, 8, 16, 32, 64)

SWEEP = SweepSpec(
    problems=("rendezvous", "baseline"),
    families=("ring",),
    sizes=(6,),
    schedulers=("delay_until_stop",),
    label_sets=tuple((label, label + 1) for label in SMALL_LABELS),
    max_traversals=1_000_000,
    name="e2-rendezvous-vs-label",
)


def _guaranteed_bound(record, model):
    """Π(n, |L|) for RV-asynch-poly, the full trajectory length for the baseline."""
    label = record.spec.labels[0]
    if record.problem == "rendezvous":
        return model.pi_bound(record.graph_size, label.bit_length())
    return model.baseline_trajectory_length(record.graph_size, label)


def test_rendezvous_vs_label(benchmark, sim_model):
    result = run_once(benchmark, run_sweep, SWEEP, model=sim_model)
    assert result.all_ok

    rows = []
    bounds = {}
    for record in result:
        label = record.spec.labels[0]
        bound = _guaranteed_bound(record, sim_model)
        bounds.setdefault(record.problem, []).append((label, bound))
        rows.append(
            [
                label,
                label.bit_length(),
                record.problem,
                "yes" if record.ok else "no",
                record.cost,
                bound,
            ]
        )
    table = format_table(
        ["label_small", "label_length", "algorithm", "met", "measured_cost", "guaranteed_bound"],
        rows,
        title="E2: cost vs label (measured under the delay-until-stop adversary, plus guarantees)",
    )

    growth = {
        problem: classify_growth(
            [label for label, _ in sorted(pairs)], [bound for _, bound in sorted(pairs)]
        )
        for problem, pairs in bounds.items()
    }
    emit(
        "e2_rendezvous_vs_label",
        table
        + f"\n\nguarantee growth in the label: baseline={growth['baseline']}, "
        f"rv={growth['rendezvous']}",
    )
    assert growth["baseline"] == "exponential"
    assert growth["rendezvous"] == "polynomial"
