"""Engine micro-benchmark: edge traversals per second.

Not one of the paper's experiments, but the number every other benchmark's
wall-clock time depends on: how fast the asynchronous engine can drive agent
programs.  The instance is declared as a
:class:`~repro.runtime.spec.ScenarioSpec` and its graph, adversary and cost
model are resolved through the runtime's builders; the engine itself is then
driven *without* a rendezvous goal (a deliberate step below the problem
layer — the problem kinds all stop at their goal, while this benchmark must
burn its full traversal budget so every timed run does identical work).
"""

from __future__ import annotations

from repro.core.rendezvous import RendezvousController
from repro.runtime import ScenarioSpec
from repro.runtime.runner import build_graph, build_scheduler
from repro.sim import AgentSpec, AsyncEngine

TRAVERSAL_BUDGET = 30_000

SPEC = ScenarioSpec(
    problem="rendezvous",
    family="ring",
    size=8,
    labels=(6, 11),
    starts=(0, 4),
    scheduler="round_robin",
    max_traversals=TRAVERSAL_BUDGET,
    on_cost_limit="return",
    name="engine-throughput",
)


def _drive_engine(sim_model):
    graph = build_graph(SPEC)
    engine = AsyncEngine(
        graph,
        [
            AgentSpec(
                RendezvousController("agent-1", SPEC.labels[0], sim_model), SPEC.starts[0]
            ),
            # No rendezvous goal and a far-away partner: the run always hits
            # the budget, so every timed run does the same amount of work.
            AgentSpec(
                RendezvousController("agent-2", SPEC.labels[1], sim_model), SPEC.starts[1]
            ),
        ],
        build_scheduler(SPEC),
        max_traversals=SPEC.max_traversals,
        on_cost_limit=SPEC.on_cost_limit,
    )
    return engine.run()


def test_engine_throughput(benchmark, sim_model):
    result = benchmark.pedantic(
        _drive_engine, args=(sim_model,), rounds=3, iterations=1
    )
    assert result.total_traversals >= TRAVERSAL_BUDGET
    seconds = benchmark.stats.stats.mean
    print(f"\nengine throughput: {result.total_traversals / seconds:,.0f} traversals/s")
