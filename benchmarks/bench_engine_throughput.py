"""Engine micro-benchmark: edge traversals per second.

Not one of the paper's experiments, but the number every other benchmark's
wall-clock time depends on: how fast the asynchronous engine can drive agent
programs.  Uses a plain round-robin schedule of two RV-asynch-poly agents on a
ring with a fixed traversal budget.
"""

from __future__ import annotations

import pytest

from repro.core.rendezvous import RendezvousController
from repro.exceptions import CostLimitExceeded
from repro.graphs import families
from repro.sim import AgentSpec, AsyncEngine, RoundRobinScheduler

TRAVERSAL_BUDGET = 30_000


def _drive_engine(sim_model):
    graph = families.ring(8)
    engine = AsyncEngine(
        graph,
        [
            AgentSpec(RendezvousController("agent-1", 6, sim_model), 0),
            # No rendezvous goal and a far-away partner: the run always hits
            # the budget, so every timed run does the same amount of work.
            AgentSpec(RendezvousController("agent-2", 11, sim_model), 4),
        ],
        RoundRobinScheduler(),
        max_traversals=TRAVERSAL_BUDGET,
        on_cost_limit="return",
    )
    return engine.run()


def test_engine_throughput(benchmark, sim_model):
    result = benchmark.pedantic(
        _drive_engine, args=(sim_model,), rounds=3, iterations=1
    )
    assert result.total_traversals >= TRAVERSAL_BUDGET
    seconds = benchmark.stats.stats.mean
    print(f"\nengine throughput: {result.total_traversals / seconds:,.0f} traversals/s")
