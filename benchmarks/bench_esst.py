"""E4: Procedure ESST — cost and termination phase versus graph size.

Theorem 2.1: the procedure terminates after a number of edge traversals
polynomial in the size of the graph, having traversed every edge; the final
phase index exceeds the size and is at most ``9n + 3``.

The benchmark runs the registered E4 :class:`ExperimentSpec` (with one extra
graph size) through :func:`~repro.analysis.experiment_spec.run_experiment`,
then fits the growth of the measured cost on rings.
"""

from __future__ import annotations

from repro.analysis.experiment_spec import experiment_spec, run_experiment
from repro.analysis.fitting import fit_power_law

from ._harness import emit, run_once

SPEC = experiment_spec("E4", sizes=(4, 5, 6, 7, 8))


def test_esst_scaling(benchmark, sim_model):
    result = run_once(benchmark, run_experiment, SPEC, model=sim_model)
    emit("e4_esst_scaling", result.render())
    assert result.result.all_ok
    for row in result.rows:
        assert row["final_phase"] <= row["phase_bound"]
        assert row["final_phase"] > row["n"]

    ring_rows = sorted(
        (row for row in result.rows if row["family"] == "ring"), key=lambda row: row["n"]
    )
    fit = fit_power_law([row["n"] for row in ring_rows], [row["cost"] for row in ring_rows])
    print(f"\nESST cost on rings grows like n^{fit.slope:.1f} (a polynomial)")
    assert fit.slope < 12  # comfortably polynomial
