"""E4: Procedure ESST — cost and termination phase versus graph size.

Theorem 2.1: the procedure terminates after a number of edge traversals
polynomial in the size of the graph, having traversed every edge; the final
phase index exceeds the size and is at most ``9n + 3``.

The benchmark declares the grid as a :class:`~repro.runtime.spec.SweepSpec`
and executes it with :func:`~repro.runtime.executors.run_sweep` — the same
facade as the CLI and the E4 experiment driver, so the sweep can opt into a
result store.
"""

from __future__ import annotations

from repro.analysis.fitting import fit_power_law
from repro.runtime import SweepSpec
from repro.runtime.executors import run_sweep

from ._harness import emit, run_once

SWEEP = SweepSpec(
    problems=("esst",),
    families=("ring", "path", "erdos_renyi"),
    sizes=(4, 5, 6, 7, 8),
    name="e4-esst-scaling",
)

FIELDS = ("family", "n", "graph_edges", "final_phase", "phase_bound", "cost", "ok")


def test_esst_scaling(benchmark, sim_model):
    result = run_once(benchmark, run_sweep, SWEEP, model=sim_model)
    emit(
        "e4_esst_scaling",
        result.table(
            FIELDS,
            title="E4: Procedure ESST (exploration with a semi-stationary token)",
        ),
    )
    assert result.all_ok
    for record in result:
        extra = record.extra_dict
        assert extra["final_phase"] <= extra["phase_bound"]
        assert extra["final_phase"] > record.graph_size

    ring_records = sorted(result.filter(family="ring"), key=lambda r: r.graph_size)
    fit = fit_power_law(
        [r.graph_size for r in ring_records], [r.cost for r in ring_records]
    )
    print(f"\nESST cost on rings grows like n^{fit.slope:.1f} (a polynomial)")
    assert fit.slope < 12  # comfortably polynomial
