"""E4: Procedure ESST — cost and termination phase versus graph size.

Theorem 2.1: the procedure terminates after a number of edge traversals
polynomial in the size of the graph, having traversed every edge; the final
phase index exceeds the size and is at most ``9n + 3``.
"""

from __future__ import annotations

from repro.analysis import experiments
from repro.analysis.fitting import fit_power_law

from ._harness import emit, run_once


def test_esst_scaling(benchmark, sim_model):
    records = run_once(
        benchmark,
        experiments.esst_scaling,
        sizes=(4, 5, 6, 7, 8),
        family_names=("ring", "path", "erdos_renyi"),
        model=sim_model,
    )
    table = experiments.esst_scaling_table(records)
    assert all(record.all_edges_traversed for record in records)
    assert all(record.final_phase <= record.phase_bound for record in records)
    assert all(record.final_phase > record.n for record in records)

    ring_records = sorted(
        (r for r in records if r.family == "ring"), key=lambda r: r.n
    )
    fit = fit_power_law([r.n for r in ring_records], [r.cost for r in ring_records])
    emit(
        "e4_esst_scaling",
        table + f"\n\nESST cost on rings grows like n^{fit.slope:.1f} (a polynomial)",
    )
    assert fit.slope < 12  # comfortably polynomial
