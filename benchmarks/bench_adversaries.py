"""E5: adversary ablation.

The paper's adversary controls the speed of both agents arbitrarily.  The
benchmark measures the cost-to-meeting of Algorithm RV-asynch-poly under the
engine's adversary family — fair round-robin, random interleaving, two
starvation strategies and the greedy meeting-avoiding adversary with a sweep
of its patience parameter — on a ring and on a random graph.

The scheduler/patience pairs are not a rectangular grid, so the registered
E5 :class:`ExperimentSpec` carries explicit cells; the benchmark builds one
spec per graph family and runs both through
:func:`~repro.analysis.experiment_spec.run_experiment`.
"""

from __future__ import annotations

from repro.analysis.experiment_spec import experiment_spec, run_experiment

from ._harness import emit, run_once


def test_adversary_ablation_ring(benchmark, sim_model):
    spec = experiment_spec(
        "E5", family="ring", n=10, patiences=(4, 16, 64, 256), max_traversals=1_000_000
    )
    result = run_once(benchmark, run_experiment, spec, model=sim_model)
    emit("e5_adversaries_ring", result.render())
    assert result.result.all_ok


def test_adversary_ablation_random_graph(benchmark, sim_model):
    spec = experiment_spec(
        "E5",
        family="erdos_renyi",
        n=10,
        patiences=(16, 64),
        max_traversals=1_000_000,
        seed=3,
    )
    result = run_once(benchmark, run_experiment, spec, model=sim_model)
    emit("e5_adversaries_random_graph", result.render())
    assert result.result.all_ok
