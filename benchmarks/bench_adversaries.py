"""E5: adversary ablation.

The paper's adversary controls the speed of both agents arbitrarily.  The
benchmark measures the cost-to-meeting of Algorithm RV-asynch-poly under the
engine's adversary family — fair round-robin, random interleaving, two
starvation strategies and the greedy meeting-avoiding adversary with a sweep
of its patience parameter — on a ring and on a random graph.
"""

from __future__ import annotations

from repro.analysis import experiments

from ._harness import emit, run_once


def test_adversary_ablation_ring(benchmark, sim_model):
    records = run_once(
        benchmark,
        experiments.adversary_ablation,
        family="ring",
        n=10,
        patiences=(4, 16, 64, 256),
        model=sim_model,
        max_traversals=1_000_000,
    )
    emit("e5_adversaries_ring", experiments.adversary_ablation_table(records))
    assert all(record.met for record in records)


def test_adversary_ablation_random_graph(benchmark, sim_model):
    records = run_once(
        benchmark,
        experiments.adversary_ablation,
        family="erdos_renyi",
        n=10,
        patiences=(16, 64),
        model=sim_model,
        max_traversals=1_000_000,
        seed=3,
    )
    emit("e5_adversaries_random_graph", experiments.adversary_ablation_table(records))
    assert all(record.met for record in records)
