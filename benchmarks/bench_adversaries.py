"""E5: adversary ablation.

The paper's adversary controls the speed of both agents arbitrarily.  The
benchmark measures the cost-to-meeting of Algorithm RV-asynch-poly under the
engine's adversary family — fair round-robin, random interleaving, two
starvation strategies and the greedy meeting-avoiding adversary with a sweep
of its patience parameter — on a ring and on a random graph.

The scheduler/patience pairs are not a rectangular grid, so the benchmark
enumerates explicit :class:`~repro.runtime.spec.ScenarioSpec` cells and
hands them to :func:`~repro.runtime.executors.run_sweep` — the runtime
accepts any iterable of scenarios.
"""

from __future__ import annotations

from repro.runtime import ScenarioSpec
from repro.runtime.executors import run_sweep

from ._harness import emit, run_once


def ablation_cells(family, n, patiences, seed=0):
    """One rendezvous cell per adversary (the avoider sweeps its patience)."""
    pairs = [("round_robin", 1), ("random", 1), ("lazy", 1), ("delay_until_stop", 1)]
    pairs += [("avoider", patience) for patience in patiences]
    return [
        ScenarioSpec(
            problem="rendezvous",
            family=family,
            size=n,
            seed=seed,
            labels=(6, 11),
            scheduler=scheduler,
            scheduler_params={"patience": patience},
            max_traversals=1_000_000,
            name="e5-adversary-ablation",
        )
        for scheduler, patience in pairs
    ]


#: Table columns: ``patience`` resolves through the spec's scheduler
#: parameters, so the avoider's sweep stays visible in the artifact.
FIELDS = ("scheduler", "patience", "family", "n", "ok", "cost", "decisions")


def test_adversary_ablation_ring(benchmark, sim_model):
    cells = ablation_cells("ring", 10, patiences=(4, 16, 64, 256))
    result = run_once(benchmark, run_sweep, cells, model=sim_model)
    emit(
        "e5_adversaries_ring",
        result.table(FIELDS, title="E5: adversary ablation (RV-asynch-poly, ring)"),
    )
    assert result.all_ok


def test_adversary_ablation_random_graph(benchmark, sim_model):
    cells = ablation_cells("erdos_renyi", 10, patiences=(16, 64), seed=3)
    result = run_once(benchmark, run_sweep, cells, model=sim_model)
    emit(
        "e5_adversaries_random_graph",
        result.table(FIELDS, title="E5: adversary ablation (RV-asynch-poly, random graph)"),
    )
    assert result.all_ok
