"""F1–F4: regenerate the structural content of the paper's Figures 1–4.

The figures are schematic decompositions of the trajectories Q(k, v),
Y'(k, v), Z(k, v) and A'(k, v); the benchmark rebuilds those decompositions
(component lists, repetition counts and exact lengths) and prints them.
"""

from __future__ import annotations

from repro.analysis import experiments

from ._harness import emit, run_once


def test_figures_structure(benchmark, sim_model):
    records = run_once(
        benchmark, experiments.figure_structures, ks=(1, 2, 3, 4, 5), model=sim_model
    )
    emit("f1_f4_figure_structures", experiments.figure_structures_table(records))
    assert len(records) == 4 * 5
    assert all(record.length > 0 for record in records)
