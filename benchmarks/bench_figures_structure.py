"""F1–F4: regenerate the structural content of the paper's Figures 1–4.

The figures are schematic decompositions of the trajectories Q(k, v),
Y'(k, v), Z(k, v) and A'(k, v); the benchmark rebuilds those decompositions
(component lists, repetition counts and exact lengths) and prints them.

Each (kind, k) pair is a cell of the scenario runtime's ``"figures"``
problem kind — the trajectory parameters travel in the spec's generic
``problem_params`` bag — so even this pure-structure table sweeps and
caches through the same facade as the measured experiments.
"""

from __future__ import annotations

from repro.runtime import ScenarioSpec
from repro.runtime.executors import run_sweep

from ._harness import emit, run_once

KINDS = ("Q", "Y'", "Z", "A'")
KS = (1, 2, 3, 4, 5)

_FIGURE_OF_KIND = {"Q": "Figure 1", "Y'": "Figure 2", "Z": "Figure 3", "A'": "Figure 4"}


def figure_cells(kinds=KINDS, ks=KS):
    return [
        ScenarioSpec(
            problem="figures",
            family="ring",
            size=4,
            problem_params={"kind": kind, "k": k},
            name="f1-f4-figure-structures",
        )
        for kind in kinds
        for k in ks
    ]


def test_figures_structure(benchmark, sim_model):
    result = run_once(benchmark, run_sweep, figure_cells(), model=sim_model)
    assert {record.extra_dict["kind"] for record in result} == set(_FIGURE_OF_KIND)
    table = result.table(
        ("kind", "k", "cost", "components", "composition"),
        title="F1-F4: structure of the trajectory constructions (paper Figures 1-4)",
    )
    emit("f1_f4_figure_structures", table)
    assert len(result) == len(KINDS) * len(KS)
    assert all(record.cost > 0 for record in result)
