"""F1–F4: regenerate the structural content of the paper's Figures 1–4.

The figures are schematic decompositions of the trajectories Q(k, v),
Y'(k, v), Z(k, v) and A'(k, v); the benchmark rebuilds those decompositions
(component lists, repetition counts and exact lengths) and prints them.

Each (kind, k) pair is a cell of the scenario runtime's ``"figures"``
problem kind; the registered F1 :class:`ExperimentSpec` (here with ``k`` up
to 5) sweeps, aggregates and renders them through the same pipeline as the
measured experiments.
"""

from __future__ import annotations

from repro.analysis.experiment_spec import experiment_spec, run_experiment

from ._harness import emit, run_once

KS = (1, 2, 3, 4, 5)

SPEC = experiment_spec("F1", ks=KS)


def test_figures_structure(benchmark, sim_model):
    result = run_once(benchmark, run_experiment, SPEC, model=sim_model)
    assert {row["figure"] for row in result.rows} == {
        "Figure 1",
        "Figure 2",
        "Figure 3",
        "Figure 4",
    }
    emit("f1_f4_figure_structures", result.render())
    assert len(result.rows) == 4 * len(KS)
    assert all(row["length"] > 0 for row in result.rows)
